// Package wire defines the binary protocol spoken between bmehserve and
// its clients.
//
// Every message is one length-prefixed frame:
//
//	offset size field
//	0      4    payload length (big-endian uint32)
//	4      1    protocol version (currently 1)
//	5      1    opcode (request, or request|0x80 for its response)
//	6      2    flags (reserved, must be zero in version 1)
//	8      8    request ID (echoed verbatim in the response)
//	16     4    CRC-32C over bytes [0,16) and the payload
//	20     …    payload
//
// Responses carry the request's ID and may be delivered out of order, so
// a client can pipeline many requests on one connection and match
// completions by ID. The version byte is checked before anything else:
// a decoder that sees a version it does not speak fails with ErrVersion
// instead of misparsing, which is the forward-compatibility contract —
// future versions may change everything after the first six bytes except
// the length prefix's meaning.
//
// The checksum catches corruption in transit or in a buggy proxy before
// a length or opcode is acted on; a mismatch is ErrChecksum, never a
// silent misroute. Decoders never allocate more than the configured
// maximum payload, no matter what the length prefix claims.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Version is the protocol version this package speaks.
const Version = 1

// HeaderSize is the fixed number of bytes before a frame's payload.
const HeaderSize = 20

// DefaultMaxPayload bounds the payload a decoder will accept (and
// therefore allocate) unless the caller chooses another limit.
const DefaultMaxPayload = 1 << 24 // 16 MiB

// Op identifies a frame's operation. Response frames use the request's
// opcode with the Resp bit set.
type Op uint8

// Resp is OR-ed into a request opcode to form its response opcode.
const Resp Op = 0x80

// Request opcodes.
const (
	OpGet   Op = 1 // payload: key → status [+ value]
	OpPut   Op = 2 // payload: key + value → status
	OpDel   Op = 3 // payload: key → status (OK = removed, NotFound = absent)
	OpRange Op = 4 // payload: lo + hi + limit → status + more + entries
	OpBatch Op = 5 // payload: entries → status + inserted count
	OpSync  Op = 6 // empty → status
	OpStats Op = 7 // empty → status + Stats

	// Replication opcodes. A replica sends one REPL_SUBSCRIBE on a
	// dedicated connection; the primary answers with its commit sequence
	// and from then on pushes REPL_RECORDS responses (commit batches and
	// snapshot chunks) and REPL_HEARTBEAT responses on its own initiative.
	// The replica sends REPL_HEARTBEAT requests carrying its applied
	// sequence so the primary can score its lag.
	OpReplSubscribe Op = 8  // payload: last applied seq → status + primary seq
	OpReplRecords   Op = 9  // push only: status + ReplMsg
	OpReplHeartbeat Op = 10 // payload: applied seq → status + primary seq

	// Streaming bulk-load opcodes. A client opens a load session with
	// LOAD_BEGIN (session 0 = new; a prior session ID resumes it after a
	// reconnect), streams numbered LOAD_CHUNK frames — each carrying its
	// own CRC-32C over the entry bytes so a torn chunk is rejected before
	// it reaches the builder — and finishes with LOAD_COMMIT, which
	// answers only once the bottom-up build's root swap is durable.
	// LOAD_ABORT discards the session.
	OpLoadBegin  Op = 11 // payload: session (0 = new) → status + session + next seq
	OpLoadChunk  Op = 12 // payload: session + seq + crc + entries → status + acked seq
	OpLoadCommit Op = 13 // payload: session → status + loaded + duplicates
	OpLoadAbort  Op = 14 // payload: session → status

	// Cluster topology opcodes. Any node answers SHARD_MAP with its
	// current shard map, so a client can bootstrap or refresh routing
	// from whichever node it reaches. SHARD_MAP_SET is the control-plane
	// push that installs a newer map (and this node's shard ID) during
	// bootstrap or an epoch flip. SHARD_MEDIAN asks a shard primary for
	// the median pseudo-key prefix of its owned records — the split
	// planner's boundary choice — and SHARD_FENCE toggles the write
	// fence over a prefix range during split hand-off.
	OpShardMap    Op = 15 // empty → status + encoded shard map
	OpShardMapSet Op = 16 // payload: shard ID + encoded map → status + epoch now in force
	OpShardMedian Op = 17 // empty → status + median prefix + owned record count
	OpShardFence  Op = 18 // payload: fence lo + hi (lo==hi clears) → status
)

// IsRequest reports whether op is a known request opcode. OpReplRecords
// is excluded: record batches are pushed by the primary, never requested.
func (op Op) IsRequest() bool {
	return (op >= OpGet && op <= OpStats) || op == OpReplSubscribe || op == OpReplHeartbeat ||
		(op >= OpLoadBegin && op <= OpLoadAbort) || (op >= OpShardMap && op <= OpShardFence)
}

// Response returns the response opcode for a request.
func (op Op) Response() Op { return op | Resp }

// String implements fmt.Stringer.
func (op Op) String() string {
	name := map[Op]string{
		OpGet: "GET", OpPut: "PUT", OpDel: "DEL", OpRange: "RANGE",
		OpBatch: "BATCH", OpSync: "SYNC", OpStats: "STATS",
		OpReplSubscribe: "REPL_SUBSCRIBE", OpReplRecords: "REPL_RECORDS",
		OpReplHeartbeat: "REPL_HEARTBEAT",
		OpLoadBegin:     "LOAD_BEGIN", OpLoadChunk: "LOAD_CHUNK",
		OpLoadCommit: "LOAD_COMMIT", OpLoadAbort: "LOAD_ABORT",
		OpShardMap: "SHARD_MAP", OpShardMapSet: "SHARD_MAP_SET",
		OpShardMedian: "SHARD_MEDIAN", OpShardFence: "SHARD_FENCE",
	}
	if s, ok := name[op&^Resp]; ok {
		if op&Resp != 0 {
			return s + "-resp"
		}
		return s
	}
	return fmt.Sprintf("Op(%d)", uint8(op))
}

// Status is the first payload byte of every response.
type Status uint8

const (
	// StatusOK: the operation succeeded (for DEL, the key existed).
	StatusOK Status = 0
	// StatusNotFound: GET or DEL addressed an absent key.
	StatusNotFound Status = 1
	// StatusDuplicate: PUT addressed a key that is already present.
	StatusDuplicate Status = 2
	// StatusErr: the operation failed; the rest of the payload is a
	// human-readable message.
	StatusErr Status = 3
	// StatusBusy: the server is over its connection or in-flight request
	// cap. The request was not executed; an idempotent request may be
	// retried after a backoff.
	StatusBusy Status = 4
	// StatusReadOnly: a mutating request reached a read replica. The
	// request was not executed; the client should address the primary.
	StatusReadOnly Status = 5
	// StatusWrongShard: the request addressed a key (or, for a write, a
	// fenced prefix) this node does not currently own. The request was
	// not executed; the response body carries the node's shard-map epoch
	// so the client can tell whether its cached map is stale and refresh
	// before retrying.
	StatusWrongShard Status = 6
)

// Protocol errors. Decoders return these (possibly wrapped); they never
// panic on hostile input.
var (
	// ErrVersion reports a frame whose version byte this decoder does not
	// speak.
	ErrVersion = errors.New("wire: unsupported protocol version")
	// ErrChecksum reports a frame whose CRC-32C does not cover its bytes.
	ErrChecksum = errors.New("wire: frame checksum mismatch")
	// ErrTooLarge reports a length prefix above the decoder's limit.
	ErrTooLarge = errors.New("wire: frame exceeds maximum payload size")
	// ErrTruncated reports a frame shorter than its header claims.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrPayload reports a payload that does not parse as its opcode's
	// encoding.
	ErrPayload = errors.New("wire: malformed payload")
	// ErrFlags reports nonzero reserved flag bits in a version-1 frame.
	ErrFlags = errors.New("wire: reserved flags set")
)

// crcTable is the Castagnoli table shared with the pagestore's on-disk
// checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Frame is one decoded protocol frame.
type Frame struct {
	Op Op
	// ID is the request ID; responses echo the request's.
	ID uint64
	// Payload is the opcode-specific body. Frames produced by
	// Reader.Next alias the reader's internal buffer and are valid only
	// until the next call; decode or copy before then.
	Payload []byte
}

// AppendFrame appends the encoded frame (current version, checksummed)
// to dst and returns the extended slice.
func AppendFrame(dst []byte, f Frame) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, HeaderSize)...)
	dst = append(dst, f.Payload...)
	hdr := dst[off:]
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(f.Payload)))
	hdr[4] = Version
	hdr[5] = byte(f.Op)
	hdr[6], hdr[7] = 0, 0
	binary.BigEndian.PutUint64(hdr[8:16], f.ID)
	crc := crc32.Update(0, crcTable, hdr[0:16])
	crc = crc32.Update(crc, crcTable, f.Payload)
	binary.BigEndian.PutUint32(hdr[16:20], crc)
	return dst
}

// DecodeFrame parses one frame from the front of b, returning the frame
// and the number of bytes consumed. The returned payload aliases b.
// Errors: ErrTruncated (b holds less than one whole frame), ErrVersion,
// ErrFlags, ErrTooLarge, ErrChecksum.
func DecodeFrame(b []byte, maxPayload int) (Frame, int, error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	if len(b) < HeaderSize {
		return Frame{}, 0, ErrTruncated
	}
	// Version gates everything after the length prefix: a future format
	// must fail here, not misparse.
	if b[4] != Version {
		return Frame{}, 0, fmt.Errorf("%w: got %d, speak %d", ErrVersion, b[4], Version)
	}
	if b[6] != 0 || b[7] != 0 {
		return Frame{}, 0, ErrFlags
	}
	n := int(binary.BigEndian.Uint32(b[0:4]))
	if n > maxPayload {
		return Frame{}, 0, fmt.Errorf("%w: %d > %d", ErrTooLarge, n, maxPayload)
	}
	if len(b) < HeaderSize+n {
		return Frame{}, 0, ErrTruncated
	}
	payload := b[HeaderSize : HeaderSize+n]
	crc := crc32.Update(0, crcTable, b[0:16])
	crc = crc32.Update(crc, crcTable, payload)
	if crc != binary.BigEndian.Uint32(b[16:20]) {
		return Frame{}, 0, ErrChecksum
	}
	return Frame{
		Op:      Op(b[5]),
		ID:      binary.BigEndian.Uint64(b[8:16]),
		Payload: payload,
	}, HeaderSize + n, nil
}

// Reader decodes frames from a byte stream.
type Reader struct {
	r   io.Reader
	max int
	hdr [HeaderSize]byte
	buf []byte
}

// NewReader returns a Reader over r that rejects payloads larger than
// maxPayload (DefaultMaxPayload when ≤ 0).
func NewReader(r io.Reader, maxPayload int) *Reader {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	return &Reader{r: r, max: maxPayload}
}

// Next reads and verifies the next frame. The frame's payload aliases
// the reader's internal buffer and is valid only until the following
// Next call. A clean end of stream between frames is io.EOF; a stream
// that ends inside a frame is io.ErrUnexpectedEOF.
func (r *Reader) Next() (Frame, error) {
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Frame{}, io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	b := r.hdr[:]
	if b[4] != Version {
		return Frame{}, fmt.Errorf("%w: got %d, speak %d", ErrVersion, b[4], Version)
	}
	if b[6] != 0 || b[7] != 0 {
		return Frame{}, ErrFlags
	}
	n := int(binary.BigEndian.Uint32(b[0:4]))
	if n > r.max {
		return Frame{}, fmt.Errorf("%w: %d > %d", ErrTooLarge, n, r.max)
	}
	// The buffer grows to the largest payload seen, never past the limit:
	// a hostile length prefix cannot make the reader balloon.
	if cap(r.buf) < n {
		r.buf = make([]byte, n)
	}
	payload := r.buf[:n]
	if _, err := io.ReadFull(r.r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	crc := crc32.Update(0, crcTable, b[0:16])
	crc = crc32.Update(crc, crcTable, payload)
	if crc != binary.BigEndian.Uint32(b[16:20]) {
		return Frame{}, ErrChecksum
	}
	return Frame{
		Op:      Op(b[5]),
		ID:      binary.BigEndian.Uint64(b[8:16]),
		Payload: payload,
	}, nil
}
