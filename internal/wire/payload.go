package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Payload encodings. Keys travel as a dimensionality byte followed by
// that many big-endian uint64 components; entries are a key followed by
// a uint64 value. All decode helpers bound every count against the bytes
// actually present before allocating, so a hostile frame cannot make the
// server reserve more memory than the frame itself occupies.

// KV is one key/value entry as it travels on the wire.
type KV struct {
	Key   []uint64
	Value uint64
}

// MaxDims bounds the key dimensionality a frame may carry. The index
// itself accepts at most 8 dimensions; the wire limit is looser so the
// server — not the codec — owns that policy error.
const MaxDims = 64

// AppendKey appends the wire encoding of key to dst.
func AppendKey(dst []byte, key []uint64) []byte {
	dst = append(dst, byte(len(key)))
	for _, c := range key {
		dst = binary.BigEndian.AppendUint64(dst, c)
	}
	return dst
}

// readKey decodes one key from the front of b, returning the key and the
// remaining bytes.
func readKey(b []byte) ([]uint64, []byte, error) {
	if len(b) < 1 {
		return nil, nil, fmt.Errorf("%w: missing key", ErrPayload)
	}
	d := int(b[0])
	if d == 0 || d > MaxDims {
		return nil, nil, fmt.Errorf("%w: key dimensionality %d", ErrPayload, d)
	}
	b = b[1:]
	if len(b) < 8*d {
		return nil, nil, fmt.Errorf("%w: key shorter than %d components", ErrPayload, d)
	}
	key := make([]uint64, d)
	for j := range key {
		key[j] = binary.BigEndian.Uint64(b[8*j:])
	}
	return key, b[8*d:], nil
}

// AppendGetReq appends a GET (or DEL) request payload.
func AppendGetReq(dst []byte, key []uint64) []byte { return AppendKey(dst, key) }

// DecodeGetReq parses a GET (or DEL) request payload.
func DecodeGetReq(p []byte) ([]uint64, error) {
	key, rest, err := readKey(p)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrPayload, len(rest))
	}
	return key, nil
}

// AppendPutReq appends a PUT request payload.
func AppendPutReq(dst []byte, key []uint64, value uint64) []byte {
	dst = AppendKey(dst, key)
	return binary.BigEndian.AppendUint64(dst, value)
}

// DecodePutReq parses a PUT request payload.
func DecodePutReq(p []byte) ([]uint64, uint64, error) {
	key, rest, err := readKey(p)
	if err != nil {
		return nil, 0, err
	}
	if len(rest) != 8 {
		return nil, 0, fmt.Errorf("%w: PUT value wants 8 bytes, has %d", ErrPayload, len(rest))
	}
	return key, binary.BigEndian.Uint64(rest), nil
}

// AppendRangeReq appends a RANGE request payload: the box corners and
// the most entries the caller wants back (0 lets the server pick).
func AppendRangeReq(dst []byte, lo, hi []uint64, limit uint32) []byte {
	dst = AppendKey(dst, lo)
	dst = AppendKey(dst, hi)
	return binary.BigEndian.AppendUint32(dst, limit)
}

// DecodeRangeReq parses a RANGE request payload.
func DecodeRangeReq(p []byte) (lo, hi []uint64, limit uint32, err error) {
	lo, p, err = readKey(p)
	if err != nil {
		return nil, nil, 0, err
	}
	hi, p, err = readKey(p)
	if err != nil {
		return nil, nil, 0, err
	}
	if len(lo) != len(hi) {
		return nil, nil, 0, fmt.Errorf("%w: range corners have %d and %d dimensions", ErrPayload, len(lo), len(hi))
	}
	if len(p) != 4 {
		return nil, nil, 0, fmt.Errorf("%w: RANGE limit wants 4 bytes, has %d", ErrPayload, len(p))
	}
	return lo, hi, binary.BigEndian.Uint32(p), nil
}

// AppendEntries appends a count-prefixed entry list (BATCH requests and
// RANGE response bodies share it).
func AppendEntries(dst []byte, kvs []KV) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(kvs)))
	for _, kv := range kvs {
		dst = AppendKey(dst, kv.Key)
		dst = binary.BigEndian.AppendUint64(dst, kv.Value)
	}
	return dst
}

// decodeEntries parses a count-prefixed entry list, returning the
// entries and the remaining bytes. The count is validated against the
// bytes present before anything is allocated.
func decodeEntries(p []byte) ([]KV, []byte, error) {
	if len(p) < 4 {
		return nil, nil, fmt.Errorf("%w: missing entry count", ErrPayload)
	}
	n := int(binary.BigEndian.Uint32(p))
	p = p[4:]
	// The smallest entry is 1 (dims) + 8 (component) + 8 (value) bytes.
	if n > len(p)/17 {
		return nil, nil, fmt.Errorf("%w: %d entries cannot fit %d bytes", ErrPayload, n, len(p))
	}
	kvs := make([]KV, 0, n)
	for i := 0; i < n; i++ {
		key, rest, err := readKey(p)
		if err != nil {
			return nil, nil, err
		}
		if len(rest) < 8 {
			return nil, nil, fmt.Errorf("%w: entry %d missing value", ErrPayload, i)
		}
		kvs = append(kvs, KV{Key: key, Value: binary.BigEndian.Uint64(rest)})
		p = rest[8:]
	}
	return kvs, p, nil
}

// AppendBatchReq appends a BATCH request payload.
func AppendBatchReq(dst []byte, kvs []KV) []byte { return AppendEntries(dst, kvs) }

// DecodeBatchReq parses a BATCH request payload.
func DecodeBatchReq(p []byte) ([]KV, error) {
	kvs, rest, err := decodeEntries(p)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrPayload, len(rest))
	}
	return kvs, nil
}

// AppendStatus appends a bare status response payload; msg rides along
// only for StatusErr.
func AppendStatus(dst []byte, st Status, msg string) []byte {
	dst = append(dst, byte(st))
	if st == StatusErr {
		dst = append(dst, msg...)
	}
	return dst
}

// DecodeStatus splits a response payload into its status and body. For
// StatusErr the body is the error message.
func DecodeStatus(p []byte) (Status, []byte, error) {
	if len(p) < 1 {
		return 0, nil, fmt.Errorf("%w: empty response", ErrPayload)
	}
	return Status(p[0]), p[1:], nil
}

// AppendGetResp appends a GET response: StatusOK plus the value.
func AppendGetResp(dst []byte, value uint64) []byte {
	dst = append(dst, byte(StatusOK))
	return binary.BigEndian.AppendUint64(dst, value)
}

// DecodeGetRespBody parses the body of a StatusOK GET response.
func DecodeGetRespBody(body []byte) (uint64, error) {
	if len(body) != 8 {
		return 0, fmt.Errorf("%w: GET value wants 8 bytes, has %d", ErrPayload, len(body))
	}
	return binary.BigEndian.Uint64(body), nil
}

// AppendRangeResp appends a RANGE response: StatusOK, a byte that is 1
// when the server stopped early (more entries exist in the box), and the
// entries.
func AppendRangeResp(dst []byte, more bool, kvs []KV) []byte {
	dst = append(dst, byte(StatusOK))
	if more {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	return AppendEntries(dst, kvs)
}

// DecodeRangeRespBody parses the body of a StatusOK RANGE response.
func DecodeRangeRespBody(body []byte) (kvs []KV, more bool, err error) {
	if len(body) < 1 {
		return nil, false, fmt.Errorf("%w: RANGE response missing continuation byte", ErrPayload)
	}
	more = body[0] != 0
	kvs, rest, err := decodeEntries(body[1:])
	if err != nil {
		return nil, false, err
	}
	if len(rest) != 0 {
		return nil, false, fmt.Errorf("%w: %d trailing bytes", ErrPayload, len(rest))
	}
	return kvs, more, nil
}

// AppendBatchResp appends a BATCH response: StatusOK plus how many
// entries were inserted (the rest were duplicates).
func AppendBatchResp(dst []byte, inserted uint32) []byte {
	dst = append(dst, byte(StatusOK))
	return binary.BigEndian.AppendUint32(dst, inserted)
}

// DecodeBatchRespBody parses the body of a StatusOK BATCH response.
func DecodeBatchRespBody(body []byte) (uint32, error) {
	if len(body) != 4 {
		return 0, fmt.Errorf("%w: BATCH count wants 4 bytes, has %d", ErrPayload, len(body))
	}
	return binary.BigEndian.Uint32(body), nil
}

// Server roles reported in Stats.Role.
const (
	RolePrimary uint8 = 0
	RoleReplica uint8 = 1
)

// Stats is the STATS response body: the index's Stats snapshot plus the
// geometry a client needs to build keys (dimensionality, component
// width), the directory scheme being served, and the server's place in
// the replication topology. On a primary, CommitSeq and PrimarySeq are
// equal; on a replica, PrimarySeq is the newest sequence the replica has
// heard of, so PrimarySeq − CommitSeq is its lag in commits.
type Stats struct {
	Scheme            uint8
	Dims              uint8
	Width             uint8
	DirectoryLevels   uint8
	Records           uint64
	Reads             uint64
	Writes            uint64
	DirectoryElements uint64
	DataPages         uint32
	DirectoryPages    uint32
	LoadFactor        float64
	Role              uint8
	Replicas          uint32
	CommitSeq         uint64
	PrimarySeq        uint64
	// MVCC state (WriteModeCOW servers; zero otherwise). Epoch is the
	// current commit epoch, PinnedEpochs the number of distinct epochs
	// open snapshots pin, ReclaimablePages the retired-but-unrecycled
	// page count, and COW 1 when the server runs copy-on-write.
	Epoch            uint64
	PinnedEpochs     uint32
	ReclaimablePages uint32
	COW              uint8
	// Shard identity (clustered servers; zero otherwise). Clustered is 1
	// once a shard map has been installed; ShardID is this node's index
	// in that map, [ShardLo, ShardHi) its owned pseudo-key prefix range
	// (ShardHi 0 meaning 2^64), and ShardMapEpoch the map's version —
	// the same epoch StatusWrongShard responses carry.
	Clustered     uint8
	ShardID       uint32
	ShardLo       uint64
	ShardHi       uint64
	ShardMapEpoch uint64
}

// statsSize is the fixed encoded size of Stats.
const statsSize = 4 + 4*8 + 2*4 + 8 + 1 + 4 + 2*8 + 8 + 2*4 + 1 + 1 + 4 + 3*8

// AppendStatsResp appends a STATS response: StatusOK plus the snapshot.
func AppendStatsResp(dst []byte, s Stats) []byte {
	dst = append(dst, byte(StatusOK))
	dst = append(dst, s.Scheme, s.Dims, s.Width, s.DirectoryLevels)
	dst = binary.BigEndian.AppendUint64(dst, s.Records)
	dst = binary.BigEndian.AppendUint64(dst, s.Reads)
	dst = binary.BigEndian.AppendUint64(dst, s.Writes)
	dst = binary.BigEndian.AppendUint64(dst, s.DirectoryElements)
	dst = binary.BigEndian.AppendUint32(dst, s.DataPages)
	dst = binary.BigEndian.AppendUint32(dst, s.DirectoryPages)
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(s.LoadFactor))
	dst = append(dst, s.Role)
	dst = binary.BigEndian.AppendUint32(dst, s.Replicas)
	dst = binary.BigEndian.AppendUint64(dst, s.CommitSeq)
	dst = binary.BigEndian.AppendUint64(dst, s.PrimarySeq)
	dst = binary.BigEndian.AppendUint64(dst, s.Epoch)
	dst = binary.BigEndian.AppendUint32(dst, s.PinnedEpochs)
	dst = binary.BigEndian.AppendUint32(dst, s.ReclaimablePages)
	dst = append(dst, s.COW)
	dst = append(dst, s.Clustered)
	dst = binary.BigEndian.AppendUint32(dst, s.ShardID)
	dst = binary.BigEndian.AppendUint64(dst, s.ShardLo)
	dst = binary.BigEndian.AppendUint64(dst, s.ShardHi)
	return binary.BigEndian.AppendUint64(dst, s.ShardMapEpoch)
}

// DecodeStatsRespBody parses the body of a StatusOK STATS response.
func DecodeStatsRespBody(body []byte) (Stats, error) {
	if len(body) != statsSize {
		return Stats{}, fmt.Errorf("%w: STATS wants %d bytes, has %d", ErrPayload, statsSize, len(body))
	}
	s := Stats{
		Scheme:          body[0],
		Dims:            body[1],
		Width:           body[2],
		DirectoryLevels: body[3],
	}
	s.Records = binary.BigEndian.Uint64(body[4:])
	s.Reads = binary.BigEndian.Uint64(body[12:])
	s.Writes = binary.BigEndian.Uint64(body[20:])
	s.DirectoryElements = binary.BigEndian.Uint64(body[28:])
	s.DataPages = binary.BigEndian.Uint32(body[36:])
	s.DirectoryPages = binary.BigEndian.Uint32(body[40:])
	s.LoadFactor = math.Float64frombits(binary.BigEndian.Uint64(body[44:]))
	s.Role = body[52]
	s.Replicas = binary.BigEndian.Uint32(body[53:])
	s.CommitSeq = binary.BigEndian.Uint64(body[57:])
	s.PrimarySeq = binary.BigEndian.Uint64(body[65:])
	s.Epoch = binary.BigEndian.Uint64(body[73:])
	s.PinnedEpochs = binary.BigEndian.Uint32(body[81:])
	s.ReclaimablePages = binary.BigEndian.Uint32(body[85:])
	s.COW = body[89]
	s.Clustered = body[90]
	s.ShardID = binary.BigEndian.Uint32(body[91:])
	s.ShardLo = binary.BigEndian.Uint64(body[95:])
	s.ShardHi = binary.BigEndian.Uint64(body[103:])
	s.ShardMapEpoch = binary.BigEndian.Uint64(body[111:])
	return s, nil
}
