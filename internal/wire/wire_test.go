package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Op: OpGet, ID: 0, Payload: AppendGetReq(nil, []uint64{1, 2})},
		{Op: OpPut, ID: 1, Payload: AppendPutReq(nil, []uint64{9}, 42)},
		{Op: OpSync, ID: 1<<64 - 1, Payload: nil},
		{Op: OpStats.Response(), ID: 7, Payload: AppendStatsResp(nil, Stats{Dims: 2, Records: 10})},
	}
	var stream []byte
	for _, f := range frames {
		stream = AppendFrame(stream, f)
	}
	// Slice decoding.
	rest := stream
	for i, want := range frames {
		got, n, err := DecodeFrame(rest, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Op != want.Op || got.ID != want.ID || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		t.Fatalf("%d undecoded bytes", len(rest))
	}
	// Stream decoding.
	r := NewReader(bytes.NewReader(stream), 0)
	for i, want := range frames {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("stream frame %d: %v", i, err)
		}
		if got.Op != want.Op || got.ID != want.ID || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("stream frame %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	good := AppendFrame(nil, Frame{Op: OpGet, ID: 3, Payload: []byte{1, 0, 0, 0, 0, 0, 0, 0, 5}})

	// Truncation at every length.
	for n := 0; n < len(good); n++ {
		if _, _, err := DecodeFrame(good[:n], 0); !errors.Is(err, ErrTruncated) {
			t.Fatalf("truncated at %d: %v", n, err)
		}
		r := NewReader(bytes.NewReader(good[:n]), 0)
		_, err := r.Next()
		if n == 0 {
			if err != io.EOF {
				t.Fatalf("empty stream: %v", err)
			}
		} else if err != io.ErrUnexpectedEOF {
			t.Fatalf("stream truncated at %d: %v", n, err)
		}
	}

	// Every flipped byte must be caught (checksum, version, flags or
	// length validation — never a silently different frame).
	for i := range good {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x40
		if _, _, err := DecodeFrame(bad, 0); err == nil {
			t.Fatalf("flipping byte %d went undetected", i)
		}
		if f, err := NewReader(bytes.NewReader(bad), 0).Next(); err == nil {
			t.Fatalf("stream: flipping byte %d went undetected (%+v)", i, f)
		}
	}

	// Version skew.
	skew := append([]byte(nil), good...)
	skew[4] = Version + 1
	if _, _, err := DecodeFrame(skew, 0); !errors.Is(err, ErrVersion) {
		t.Fatalf("version skew: %v", err)
	}

	// Reserved flags.
	fl := AppendFrame(nil, Frame{Op: OpGet, ID: 3})
	fl[6] = 1
	if _, _, err := DecodeFrame(fl, 0); !errors.Is(err, ErrFlags) {
		t.Fatalf("flags: %v", err)
	}

	// Oversized length prefix against a small limit.
	big := AppendFrame(nil, Frame{Op: OpPut, ID: 1, Payload: make([]byte, 100)})
	if _, _, err := DecodeFrame(big, 64); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize: %v", err)
	}
	if _, err := NewReader(bytes.NewReader(big), 64).Next(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("stream oversize: %v", err)
	}
}

func TestPayloadRoundTrips(t *testing.T) {
	key := []uint64{7, 1 << 40, 0}
	if got, err := DecodeGetReq(AppendGetReq(nil, key)); err != nil || !reflect.DeepEqual(got, key) {
		t.Fatalf("get req: %v %v", got, err)
	}
	if k, v, err := DecodePutReq(AppendPutReq(nil, key, 99)); err != nil || v != 99 || !reflect.DeepEqual(k, key) {
		t.Fatalf("put req: %v %d %v", k, v, err)
	}
	lo, hi := []uint64{1, 2}, []uint64{3, 4}
	gl, gh, lim, err := DecodeRangeReq(AppendRangeReq(nil, lo, hi, 17))
	if err != nil || lim != 17 || !reflect.DeepEqual(gl, lo) || !reflect.DeepEqual(gh, hi) {
		t.Fatalf("range req: %v %v %d %v", gl, gh, lim, err)
	}
	kvs := []KV{{Key: []uint64{1}, Value: 2}, {Key: []uint64{3}, Value: 4}}
	if got, err := DecodeBatchReq(AppendBatchReq(nil, kvs)); err != nil || !reflect.DeepEqual(got, kvs) {
		t.Fatalf("batch req: %v %v", got, err)
	}
	if got, err := DecodeBatchReq(AppendBatchReq(nil, nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty batch req: %v %v", got, err)
	}

	// Responses.
	st, body, err := DecodeStatus(AppendGetResp(nil, 1234))
	if err != nil || st != StatusOK {
		t.Fatalf("get resp status: %v %v", st, err)
	}
	if v, err := DecodeGetRespBody(body); err != nil || v != 1234 {
		t.Fatalf("get resp: %d %v", v, err)
	}
	st, body, err = DecodeStatus(AppendStatus(nil, StatusErr, "boom"))
	if err != nil || st != StatusErr || string(body) != "boom" {
		t.Fatalf("err resp: %v %q %v", st, body, err)
	}
	st, body, err = DecodeStatus(AppendRangeResp(nil, true, kvs))
	if err != nil || st != StatusOK {
		t.Fatalf("range resp status: %v %v", st, err)
	}
	rkvs, more, err := DecodeRangeRespBody(body)
	if err != nil || !more || !reflect.DeepEqual(rkvs, kvs) {
		t.Fatalf("range resp: %v %v %v", rkvs, more, err)
	}
	st, body, err = DecodeStatus(AppendBatchResp(nil, 5))
	if err != nil || st != StatusOK {
		t.Fatalf("batch resp status: %v %v", st, err)
	}
	if n, err := DecodeBatchRespBody(body); err != nil || n != 5 {
		t.Fatalf("batch resp: %d %v", n, err)
	}
	s := Stats{
		Scheme: 1, Dims: 3, Width: 32, DirectoryLevels: 4,
		Records: 1 << 40, Reads: 7, Writes: 8, DirectoryElements: 9,
		DataPages: 10, DirectoryPages: 11, LoadFactor: 0.625,
	}
	st, body, err = DecodeStatus(AppendStatsResp(nil, s))
	if err != nil || st != StatusOK {
		t.Fatalf("stats resp status: %v %v", st, err)
	}
	if got, err := DecodeStatsRespBody(body); err != nil || got != s {
		t.Fatalf("stats resp: %+v %v", got, err)
	}
}

func TestPayloadErrors(t *testing.T) {
	bad := [][]byte{
		{},           // missing key
		{0},          // zero dims
		{65},         // dims above MaxDims
		{2, 0, 0, 0}, // key shorter than dims
	}
	for _, p := range bad {
		if _, err := DecodeGetReq(p); !errors.Is(err, ErrPayload) {
			t.Fatalf("get req %v: %v", p, err)
		}
	}
	// Trailing bytes.
	if _, err := DecodeGetReq(append(AppendGetReq(nil, []uint64{1}), 0)); !errors.Is(err, ErrPayload) {
		t.Fatal("trailing bytes accepted")
	}
	// PUT without a value.
	if _, _, err := DecodePutReq(AppendGetReq(nil, []uint64{1})); !errors.Is(err, ErrPayload) {
		t.Fatal("PUT without value accepted")
	}
	// Range corners of different dimensionality.
	p := AppendKey(nil, []uint64{1})
	p = AppendKey(p, []uint64{1, 2})
	p = append(p, 0, 0, 0, 0)
	if _, _, _, err := DecodeRangeReq(p); !errors.Is(err, ErrPayload) {
		t.Fatal("mismatched range corners accepted")
	}
	// Entry count larger than the bytes present must fail before any
	// allocation proportional to the claimed count.
	huge := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := DecodeBatchReq(huge); !errors.Is(err, ErrPayload) {
		t.Fatal("hostile batch count accepted")
	}
}
