package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame throws arbitrary bytes at both decoders. Whatever the
// input — truncated, oversized, checksum-damaged, version-skewed — the
// decoder must either return a frame that re-encodes to the same bytes
// or an error; it must never panic, and it must never allocate beyond
// the configured payload limit (enforced here by running with a small
// limit against inputs that may claim enormous lengths).
func FuzzDecodeFrame(f *testing.F) {
	f.Add(AppendFrame(nil, Frame{Op: OpGet, ID: 1, Payload: AppendGetReq(nil, []uint64{1, 2})}))
	f.Add(AppendFrame(nil, Frame{Op: OpPut, ID: 2, Payload: AppendPutReq(nil, []uint64{7}, 9)}))
	f.Add(AppendFrame(nil, Frame{Op: OpRange, ID: 3, Payload: AppendRangeReq(nil, []uint64{0}, []uint64{5}, 10)}))
	f.Add(AppendFrame(nil, Frame{Op: OpBatch, ID: 4, Payload: AppendBatchReq(nil, []KV{{Key: []uint64{1}, Value: 2}})}))
	f.Add(AppendFrame(nil, Frame{Op: OpSync, ID: 5}))
	f.Add(AppendFrame(nil, Frame{Op: OpStats.Response(), ID: 6, Payload: AppendStatsResp(nil, Stats{Dims: 2})}))
	f.Add(AppendFrame(nil, Frame{Op: OpLoadBegin, ID: 10, Payload: AppendLoadBeginReq(nil, 0)}))
	f.Add(AppendFrame(nil, Frame{Op: OpLoadChunk, ID: 11, Payload: AppendLoadChunkReq(nil, 3, 1, []KV{{Key: []uint64{4, 5}, Value: 6}})}))
	f.Add(AppendFrame(nil, Frame{Op: OpLoadCommit, ID: 12, Payload: AppendLoadCommitReq(nil, 3)}))
	f.Add(AppendFrame(nil, Frame{Op: OpLoadBegin.Response(), ID: 13, Payload: AppendLoadBeginResp(nil, 3, 7)}))
	f.Add(AppendFrame(nil, Frame{Op: OpLoadCommit.Response(), ID: 14, Payload: AppendLoadCommitResp(nil, 100, 2)}))
	f.Add(AppendFrame(nil, Frame{Op: OpShardMap, ID: 15}))
	f.Add(AppendFrame(nil, Frame{Op: OpShardMap.Response(), ID: 16, Payload: AppendShardMapResp(nil, []byte{1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 1, 0, 3, 'a', ':', '1', 0, 0})}))
	f.Add(AppendFrame(nil, Frame{Op: OpShardMapSet, ID: 17, Payload: AppendShardMapSetReq(nil, 2, []byte{1, 2, 3})}))
	f.Add(AppendFrame(nil, Frame{Op: OpShardMapSet.Response(), ID: 18, Payload: AppendShardEpochResp(nil, 9)}))
	f.Add(AppendFrame(nil, Frame{Op: OpShardMedian, ID: 19}))
	f.Add(AppendFrame(nil, Frame{Op: OpShardMedian.Response(), ID: 20, Payload: AppendShardMedianResp(nil, 1<<63, 4096)}))
	f.Add(AppendFrame(nil, Frame{Op: OpShardFence, ID: 21, Payload: AppendShardFenceReq(nil, 1<<62, 1<<63)}))
	f.Add(AppendFrame(nil, Frame{Op: OpGet.Response(), ID: 22, Payload: AppendWrongShardResp(nil, 3)}))
	// Truncated, bad-CRC and version-skew seeds.
	good := AppendFrame(nil, Frame{Op: OpGet, ID: 7, Payload: AppendGetReq(nil, []uint64{3})})
	f.Add(good[:len(good)-1])
	f.Add(good[:HeaderSize-1])
	crcBad := append([]byte(nil), good...)
	crcBad[16] ^= 0xff
	f.Add(crcBad)
	verBad := append([]byte(nil), good...)
	verBad[4] = 0xee
	f.Add(verBad)
	// Hostile length prefix: claims 4 GiB-ish with no body.
	f.Add([]byte{0xff, 0xff, 0xff, 0xf0, Version, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0})

	const limit = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data, limit)
		if err == nil {
			if n < HeaderSize || n > len(data) {
				t.Fatalf("consumed %d of %d bytes", n, len(data))
			}
			if len(fr.Payload) > limit {
				t.Fatalf("payload %d exceeds limit %d", len(fr.Payload), limit)
			}
			// A frame that decodes must re-encode to the consumed bytes
			// bit for bit (the codec is canonical).
			if re := AppendFrame(nil, fr); !bytes.Equal(re, data[:n]) {
				t.Fatalf("re-encode mismatch:\n in  %x\n out %x", data[:n], re)
			}
			// Opcode-specific payload decoders must not panic either.
			switch fr.Op {
			case OpGet, OpDel:
				_, _ = DecodeGetReq(fr.Payload)
			case OpPut:
				_, _, _ = DecodePutReq(fr.Payload)
			case OpRange:
				_, _, _, _ = DecodeRangeReq(fr.Payload)
			case OpBatch:
				_, _ = DecodeBatchReq(fr.Payload)
			case OpLoadBegin:
				_, _ = DecodeLoadBeginReq(fr.Payload)
			case OpLoadChunk:
				_, _, _, _ = DecodeLoadChunkReq(fr.Payload)
			case OpLoadCommit:
				_, _ = DecodeLoadCommitReq(fr.Payload)
			case OpLoadAbort:
				_, _ = DecodeLoadAbortReq(fr.Payload)
			case OpShardMapSet:
				_, _, _ = DecodeShardMapSetReq(fr.Payload)
			case OpShardFence:
				_, _, _ = DecodeShardFenceReq(fr.Payload)
			}
			if fr.Op&Resp != 0 {
				if st, body, err := DecodeStatus(fr.Payload); err == nil && st == StatusOK {
					switch fr.Op &^ Resp {
					case OpGet:
						_, _ = DecodeGetRespBody(body)
					case OpRange:
						_, _, _ = DecodeRangeRespBody(body)
					case OpBatch:
						_, _ = DecodeBatchRespBody(body)
					case OpStats:
						_, _ = DecodeStatsRespBody(body)
					case OpLoadBegin:
						_, _, _ = DecodeLoadBeginRespBody(body)
					case OpLoadChunk:
						_, _ = DecodeLoadChunkRespBody(body)
					case OpLoadCommit:
						_, _, _ = DecodeLoadCommitRespBody(body)
					case OpShardMap:
						_, _ = DecodeShardMapRespBody(body)
					case OpShardMapSet:
						_, _ = DecodeShardEpochRespBody(body)
					case OpShardMedian:
						_, _, _ = DecodeShardMedianRespBody(body)
					}
				} else if err == nil && st == StatusWrongShard {
					_ = DecodeWrongShardBody(body)
				}
			}
		}
		// The streaming reader must agree with the slice decoder on
		// whether the prefix holds a valid frame.
		sf, serr := NewReader(bytes.NewReader(data), limit).Next()
		if (err == nil) != (serr == nil) {
			t.Fatalf("slice err %v, stream err %v", err, serr)
		}
		if err == nil && (sf.Op != fr.Op || sf.ID != fr.ID || !bytes.Equal(sf.Payload, fr.Payload)) {
			t.Fatalf("slice and stream disagree: %+v vs %+v", fr, sf)
		}
	})
}
