package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Streaming bulk-load payloads. A load session survives the connection
// that opened it: the session ID returned by LOAD_BEGIN names server-side
// state, so a client that loses its connection mid-stream redials, sends
// LOAD_BEGIN with the old ID, learns the next expected chunk sequence,
// and resumes from there. Chunks are numbered from 1 and each carries its
// own CRC-32C over the encoded entry bytes — the frame checksum guards
// the envelope, the chunk checksum guards the cargo across retries and
// reassembly, so a torn or corrupted chunk is refused before any of its
// records reach the builder.

// AppendLoadBeginReq appends a LOAD_BEGIN request payload. Session 0 asks
// the server to open a new load session; a nonzero ID resumes that one.
func AppendLoadBeginReq(dst []byte, session uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, session)
}

// DecodeLoadBeginReq parses a LOAD_BEGIN request payload.
func DecodeLoadBeginReq(p []byte) (session uint64, err error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("%w: LOAD_BEGIN wants 8 bytes, has %d", ErrPayload, len(p))
	}
	return binary.BigEndian.Uint64(p), nil
}

// AppendLoadBeginResp appends a LOAD_BEGIN response: StatusOK, the
// session ID, and the next chunk sequence the server expects (1 for a
// fresh session).
func AppendLoadBeginResp(dst []byte, session, nextSeq uint64) []byte {
	dst = append(dst, byte(StatusOK))
	dst = binary.BigEndian.AppendUint64(dst, session)
	return binary.BigEndian.AppendUint64(dst, nextSeq)
}

// DecodeLoadBeginRespBody parses the body of a StatusOK LOAD_BEGIN
// response.
func DecodeLoadBeginRespBody(body []byte) (session, nextSeq uint64, err error) {
	if len(body) != 16 {
		return 0, 0, fmt.Errorf("%w: LOAD_BEGIN response wants 16 bytes, has %d", ErrPayload, len(body))
	}
	return binary.BigEndian.Uint64(body), binary.BigEndian.Uint64(body[8:]), nil
}

// AppendLoadChunkReq appends a LOAD_CHUNK request payload: session, chunk
// sequence (from 1), a CRC-32C over the encoded entries, then the
// entries themselves.
func AppendLoadChunkReq(dst []byte, session, seq uint64, kvs []KV) []byte {
	dst = binary.BigEndian.AppendUint64(dst, session)
	dst = binary.BigEndian.AppendUint64(dst, seq)
	// Reserve the checksum slot, encode the entries after it, then fill
	// the slot with the CRC over exactly those bytes.
	crcAt := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = AppendEntries(dst, kvs)
	crc := crc32.Checksum(dst[crcAt+4:], crcTable)
	binary.BigEndian.PutUint32(dst[crcAt:], crc)
	return dst
}

// DecodeLoadChunkReq parses a LOAD_CHUNK request payload, verifying the
// chunk checksum before any entry is decoded. A mismatch is ErrChecksum.
func DecodeLoadChunkReq(p []byte) (session, seq uint64, kvs []KV, err error) {
	if len(p) < 20 {
		return 0, 0, nil, fmt.Errorf("%w: LOAD_CHUNK header wants 20 bytes, has %d", ErrPayload, len(p))
	}
	session = binary.BigEndian.Uint64(p)
	seq = binary.BigEndian.Uint64(p[8:])
	want := binary.BigEndian.Uint32(p[16:])
	body := p[20:]
	if got := crc32.Checksum(body, crcTable); got != want {
		return 0, 0, nil, fmt.Errorf("%w: LOAD_CHUNK %d", ErrChecksum, seq)
	}
	kvs, rest, err := decodeEntries(body)
	if err != nil {
		return 0, 0, nil, err
	}
	if len(rest) != 0 {
		return 0, 0, nil, fmt.Errorf("%w: %d trailing bytes", ErrPayload, len(rest))
	}
	return session, seq, kvs, nil
}

// AppendLoadChunkResp appends a LOAD_CHUNK response: StatusOK plus the
// acknowledged chunk sequence.
func AppendLoadChunkResp(dst []byte, seq uint64) []byte {
	dst = append(dst, byte(StatusOK))
	return binary.BigEndian.AppendUint64(dst, seq)
}

// DecodeLoadChunkRespBody parses the body of a StatusOK LOAD_CHUNK
// response.
func DecodeLoadChunkRespBody(body []byte) (seq uint64, err error) {
	if len(body) != 8 {
		return 0, fmt.Errorf("%w: LOAD_CHUNK ack wants 8 bytes, has %d", ErrPayload, len(body))
	}
	return binary.BigEndian.Uint64(body), nil
}

// AppendLoadCommitReq appends a LOAD_COMMIT request payload.
func AppendLoadCommitReq(dst []byte, session uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, session)
}

// DecodeLoadCommitReq parses a LOAD_COMMIT request payload.
func DecodeLoadCommitReq(p []byte) (session uint64, err error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("%w: LOAD_COMMIT wants 8 bytes, has %d", ErrPayload, len(p))
	}
	return binary.BigEndian.Uint64(p), nil
}

// AppendLoadCommitResp appends a LOAD_COMMIT response: StatusOK, how many
// records the load stored, and how many it dropped as duplicates.
func AppendLoadCommitResp(dst []byte, loaded, duplicates uint64) []byte {
	dst = append(dst, byte(StatusOK))
	dst = binary.BigEndian.AppendUint64(dst, loaded)
	return binary.BigEndian.AppendUint64(dst, duplicates)
}

// DecodeLoadCommitRespBody parses the body of a StatusOK LOAD_COMMIT
// response.
func DecodeLoadCommitRespBody(body []byte) (loaded, duplicates uint64, err error) {
	if len(body) != 16 {
		return 0, 0, fmt.Errorf("%w: LOAD_COMMIT response wants 16 bytes, has %d", ErrPayload, len(body))
	}
	return binary.BigEndian.Uint64(body), binary.BigEndian.Uint64(body[8:]), nil
}

// AppendLoadAbortReq appends a LOAD_ABORT request payload.
func AppendLoadAbortReq(dst []byte, session uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, session)
}

// DecodeLoadAbortReq parses a LOAD_ABORT request payload.
func DecodeLoadAbortReq(p []byte) (session uint64, err error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("%w: LOAD_ABORT wants 8 bytes, has %d", ErrPayload, len(p))
	}
	return binary.BigEndian.Uint64(p), nil
}
