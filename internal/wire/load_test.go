package wire

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

func TestLoadPayloadRoundTrips(t *testing.T) {
	if s, err := DecodeLoadBeginReq(AppendLoadBeginReq(nil, 42)); err != nil || s != 42 {
		t.Fatalf("LOAD_BEGIN req: s=%d err=%v", s, err)
	}
	st, body, err := DecodeStatus(AppendLoadBeginResp(nil, 7, 3))
	if err != nil || st != StatusOK {
		t.Fatalf("LOAD_BEGIN resp status: %v %v", st, err)
	}
	if s, seq, err := DecodeLoadBeginRespBody(body); err != nil || s != 7 || seq != 3 {
		t.Fatalf("LOAD_BEGIN resp: s=%d seq=%d err=%v", s, seq, err)
	}

	kvs := []KV{
		{Key: []uint64{1, 2}, Value: 3},
		{Key: []uint64{4, 5}, Value: 6},
	}
	p := AppendLoadChunkReq(nil, 7, 9, kvs)
	s, seq, got, err := DecodeLoadChunkReq(p)
	if err != nil || s != 7 || seq != 9 || len(got) != 2 {
		t.Fatalf("LOAD_CHUNK req: s=%d seq=%d n=%d err=%v", s, seq, len(got), err)
	}
	for i := range kvs {
		if got[i].Value != kvs[i].Value || len(got[i].Key) != len(kvs[i].Key) {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], kvs[i])
		}
	}
	// An empty chunk is legal (it just advances the sequence).
	if _, _, got, err := DecodeLoadChunkReq(AppendLoadChunkReq(nil, 1, 1, nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty LOAD_CHUNK: n=%d err=%v", len(got), err)
	}

	if seq, err := DecodeLoadChunkRespBody(AppendLoadChunkResp(nil, 9)[1:]); err != nil || seq != 9 {
		t.Fatalf("LOAD_CHUNK ack: seq=%d err=%v", seq, err)
	}
	if s, err := DecodeLoadCommitReq(AppendLoadCommitReq(nil, 7)); err != nil || s != 7 {
		t.Fatalf("LOAD_COMMIT req: s=%d err=%v", s, err)
	}
	if l, d, err := DecodeLoadCommitRespBody(AppendLoadCommitResp(nil, 100, 4)[1:]); err != nil || l != 100 || d != 4 {
		t.Fatalf("LOAD_COMMIT resp: l=%d d=%d err=%v", l, d, err)
	}
	if s, err := DecodeLoadAbortReq(AppendLoadAbortReq(nil, 7)); err != nil || s != 7 {
		t.Fatalf("LOAD_ABORT req: s=%d err=%v", s, err)
	}
}

// TestLoadChunkTorn damages and truncates an encoded chunk every way a
// torn write or buggy proxy could and checks each is refused — the
// chunk's own CRC must catch what the frame envelope cannot.
func TestLoadChunkTorn(t *testing.T) {
	kvs := []KV{{Key: []uint64{11, 22}, Value: 33}, {Key: []uint64{44, 55}, Value: 66}}
	good := AppendLoadChunkReq(nil, 5, 2, kvs)
	if _, _, _, err := DecodeLoadChunkReq(good); err != nil {
		t.Fatalf("pristine chunk refused: %v", err)
	}

	// Every strict prefix must fail: short ones as malformed headers,
	// longer ones as checksum mismatches (the CRC covers all entry bytes).
	for n := 0; n < len(good); n++ {
		if _, _, _, err := DecodeLoadChunkReq(good[:n]); err == nil {
			t.Fatalf("truncated chunk (%d of %d bytes) accepted", n, len(good))
		}
	}

	// Single-bit damage anywhere in the entry bytes must be a checksum
	// error, refused before entries decode.
	for i := 20; i < len(good); i++ {
		torn := append([]byte(nil), good...)
		torn[i] ^= 0x40
		_, _, _, err := DecodeLoadChunkReq(torn)
		if err == nil {
			t.Fatalf("torn byte %d accepted", i)
		}
		if !errors.Is(err, ErrChecksum) {
			t.Fatalf("torn byte %d: got %v, want ErrChecksum", i, err)
		}
	}

	// Damage to the stored CRC itself must also fail.
	torn := append([]byte(nil), good...)
	torn[16] ^= 0xff
	if _, _, _, err := DecodeLoadChunkReq(torn); !errors.Is(err, ErrChecksum) {
		t.Fatalf("damaged CRC field: %v", err)
	}

	// A chunk whose CRC is valid but whose entry count over-claims must
	// fail as a payload error before anything is allocated: build the
	// hostile body by hand and checksum it honestly so the CRC gate
	// passes and the entry decoder is the one that refuses.
	body := []byte{0xff, 0xff, 0xff, 0xff} // claims 4 G entries, carries none
	hostile := AppendLoadChunkReq(nil, 5, 2, nil)[:20]
	hostile = append(hostile, body...)
	binary.BigEndian.PutUint32(hostile[16:], crc32.Checksum(body, crcTable))
	if _, _, _, err := DecodeLoadChunkReq(hostile); !errors.Is(err, ErrPayload) {
		t.Fatalf("valid-CRC hostile count: got %v, want ErrPayload", err)
	}
}
