package wire

import (
	"bytes"
	"testing"
)

func TestShardOpCodecsRoundTrip(t *testing.T) {
	blob := []byte{1, 0, 0, 0, 0, 0, 0, 0, 7, 0, 0, 0, 1}

	id, got, err := DecodeShardMapSetReq(AppendShardMapSetReq(nil, 3, blob))
	if err != nil || id != 3 || !bytes.Equal(got, blob) {
		t.Fatalf("SHARD_MAP_SET round trip: id %d blob %x err %v", id, got, err)
	}

	st, body, err := DecodeStatus(AppendShardMapResp(nil, blob))
	if err != nil || st != StatusOK {
		t.Fatal(err)
	}
	if got, err := DecodeShardMapRespBody(body); err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("SHARD_MAP round trip: %x err %v", got, err)
	}

	st, body, err = DecodeStatus(AppendShardEpochResp(nil, 42))
	if err != nil || st != StatusOK {
		t.Fatal(err)
	}
	if e, err := DecodeShardEpochRespBody(body); err != nil || e != 42 {
		t.Fatalf("epoch round trip: %d err %v", e, err)
	}

	st, body, err = DecodeStatus(AppendShardMedianResp(nil, 1<<63, 999))
	if err != nil || st != StatusOK {
		t.Fatal(err)
	}
	if m, n, err := DecodeShardMedianRespBody(body); err != nil || m != 1<<63 || n != 999 {
		t.Fatalf("median round trip: %#x/%d err %v", m, n, err)
	}

	lo, hi, err := DecodeShardFenceReq(AppendShardFenceReq(nil, 5, 0))
	if err != nil || lo != 5 || hi != 0 {
		t.Fatalf("fence round trip: [%d,%d) err %v", lo, hi, err)
	}

	st, body, err = DecodeStatus(AppendWrongShardResp(nil, 17))
	if err != nil || st != StatusWrongShard {
		t.Fatalf("wrong-shard status %v err %v", st, err)
	}
	if e := DecodeWrongShardBody(body); e != 17 {
		t.Fatalf("wrong-shard epoch %d", e)
	}
}

// Hostile inputs: every decoder must reject short or ill-sized payloads
// with ErrPayload, never panic or misparse.
func TestShardOpCodecsHostile(t *testing.T) {
	if _, _, err := DecodeShardMapSetReq([]byte{0, 0, 0, 1}); err == nil {
		t.Error("SHARD_MAP_SET with no map decoded")
	}
	if _, _, err := DecodeShardMapSetReq(nil); err == nil {
		t.Error("empty SHARD_MAP_SET decoded")
	}
	if _, err := DecodeShardMapRespBody(nil); err == nil {
		t.Error("empty shard map body decoded")
	}
	if _, err := DecodeShardEpochRespBody([]byte{1, 2, 3}); err == nil {
		t.Error("short epoch decoded")
	}
	if _, err := DecodeShardEpochRespBody(make([]byte, 9)); err == nil {
		t.Error("long epoch decoded")
	}
	if _, _, err := DecodeShardMedianRespBody(make([]byte, 15)); err == nil {
		t.Error("short median decoded")
	}
	if _, _, err := DecodeShardFenceReq(make([]byte, 17)); err == nil {
		t.Error("long fence decoded")
	}
	if _, _, err := DecodeShardFenceReq(nil); err == nil {
		t.Error("empty fence decoded")
	}
	// WrongShard tolerates a short body by design (epoch 0).
	if e := DecodeWrongShardBody(nil); e != 0 {
		t.Errorf("short wrong-shard body -> epoch %d", e)
	}
}

func TestStatsShardFieldsRoundTrip(t *testing.T) {
	in := Stats{
		Scheme: 1, Dims: 3, Width: 21, Records: 12345,
		Role: RolePrimary, CommitSeq: 88, Epoch: 4, COW: 1,
		Clustered: 1, ShardID: 2, ShardLo: 1 << 62, ShardHi: 3 << 62, ShardMapEpoch: 9,
	}
	st, body, err := DecodeStatus(AppendStatsResp(nil, in))
	if err != nil || st != StatusOK {
		t.Fatal(err)
	}
	out, err := DecodeStatsRespBody(body)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("stats round trip:\n in  %+v\n out %+v", in, out)
	}
	if _, err := DecodeStatsRespBody(body[:len(body)-1]); err == nil {
		t.Fatal("truncated stats decoded")
	}
}

func TestShardOpsAreRequests(t *testing.T) {
	for _, op := range []Op{OpShardMap, OpShardMapSet, OpShardMedian, OpShardFence} {
		if !op.IsRequest() {
			t.Errorf("%v not a request", op)
		}
		if op.String() == "" || op.String()[0] == 'O' {
			t.Errorf("%v has no name", op)
		}
	}
	if Op(19).IsRequest() {
		t.Error("op 19 claims to be a request")
	}
}
