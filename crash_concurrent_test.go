package bmeh

// Crash matrix with concurrent writers: simulated power losses are swept
// across a workload where several goroutines insert and delete through the
// core tree's latch-crabbing write path while commits quiesce them — the
// same discipline Index.Sync uses (writers share a lock that the commit
// takes exclusively). After each crash the surviving bytes are reopened
// through WAL recovery; the tree must Validate, every key state captured
// by the last acknowledged commit must be intact, and an offline Fsck of
// the recovered file must come back clean.

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"bmeh/internal/core"
	"bmeh/internal/pagestore"
	"bmeh/internal/params"
	"bmeh/internal/workload"
)

func TestCrashMatrixConcurrentWriters(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix is a sweep; skipped in -short")
	}
	prm := params.Default(2, 4)
	ps := core.PageBytes(prm)
	const (
		writers   = 4
		perWriter = 24
		points    = 16
	)
	keys := workload.Uniform(2, 99).Take(writers * perWriter)

	type snapshot map[int]bool // key index → present

	// run drives the concurrent workload over a crash-wrapped FileDisk.
	// It returns the state captured by the last commit that acknowledged
	// (returned nil), and by the first commit that failed — recovery must
	// land on one of the two; keys they agree on are asserted.
	run := func(cd *pagestore.CrashDisk, main, wal *pagestore.MemFile, armAt int64, mode pagestore.CrashMode) (acked, inFlight snapshot, err error) {
		fd, err := pagestore.CreateFileDiskFiles(cd.File(main), cd.File(wal), ps)
		if err != nil {
			return nil, nil, err
		}
		tr, err := core.New(fd, prm)
		if err != nil {
			return nil, nil, err
		}
		var (
			gate    sync.RWMutex // writers share; commits exclusive, like Index.mu
			stateMu sync.Mutex
			live    = snapshot{}
			ackMu   sync.Mutex
			failed  bool
		)
		commit := func() error {
			gate.Lock()
			defer gate.Unlock()
			snap := make(snapshot, len(live))
			for k, v := range live {
				snap[k] = v
			}
			cerr := tr.FlushDirtyPages()
			if cerr == nil {
				cerr = fd.WriteMeta(tr.MarshalMeta())
			}
			if cerr == nil {
				cerr = fd.Sync()
			}
			ackMu.Lock()
			if cerr == nil {
				acked = snap
			} else if !failed {
				failed, inFlight = true, snap
			}
			ackMu.Unlock()
			return cerr
		}
		if err := commit(); err != nil {
			return acked, inFlight, err
		}
		if armAt >= 0 {
			cd.Arm(armAt, mode)
		}
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				do := func(idx int, del bool) bool {
					gate.RLock()
					var err error
					if del {
						_, err = tr.Delete(keys[idx])
					} else {
						err = tr.Insert(keys[idx], uint64(idx))
					}
					if err == nil {
						stateMu.Lock()
						live[idx] = !del
						stateMu.Unlock()
					}
					gate.RUnlock()
					return err == nil
				}
				for i := 0; i < perWriter; i++ {
					idx := w*perWriter + i
					if !do(idx, false) {
						return // device died; wind down
					}
					if i%4 == 3 && !do(idx-2, true) {
						return
					}
					if i%3 == 2 && commit() != nil {
						return
					}
				}
				commit()
			}(w)
		}
		wg.Wait()
		return acked, inFlight, nil
	}

	// Disarmed pass: measure the write span so crash points cover the
	// workload. The count varies run to run with scheduling; points beyond
	// a given run's span simply complete clean and assert the full state.
	clean := pagestore.NewCrashDisk()
	cleanAcked, _, err := run(clean, pagestore.NewMemFile(), pagestore.NewMemFile(), -1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cleanAcked) != writers*perWriter {
		t.Fatalf("clean pass acknowledged %d of %d keys; harness broken", len(cleanAcked), writers*perWriter)
	}
	total := clean.Writes()
	if total < 100 {
		t.Fatalf("workload exposes only %d crash points; harness too small", total)
	}
	t.Logf("clean pass issued %d writes; sweeping %d crash points", total, points)

	search := func(tr *core.Tree, idx int) (uint64, bool) {
		v, ok, err := tr.Search(keys[idx])
		if err != nil {
			t.Fatalf("searching key %d: %v", idx, err)
		}
		return v, ok
	}
	for p := int64(0); p < points; p++ {
		// Land within the first ~85% of the measured span so the crash
		// reliably fires despite run-to-run write-count jitter.
		armAt := 10 + p*(total*85/100)/points
		mode := pagestore.CrashDrop
		if p%2 == 1 {
			mode = pagestore.CrashTorn
		}
		cd := pagestore.NewCrashDisk()
		main, wal := pagestore.NewMemFile(), pagestore.NewMemFile()
		acked, inFlight, err := run(cd, main, wal, armAt, mode)
		if err != nil {
			t.Fatalf("point %d (+%d): harness error before the crash: %v", p, armAt, err)
		}
		if !cd.Crashed() {
			t.Fatalf("point %d (+%d): crash never fired", p, armAt)
		}

		fd, err := pagestore.OpenFileDiskFiles(main, wal)
		if err != nil {
			t.Fatalf("point %d (+%d, %v): recovery open failed: %v", p, armAt, mode, err)
		}
		meta := make([]byte, 256)
		n, err := fd.ReadMeta(meta)
		if err != nil {
			t.Fatalf("point %d: reading meta: %v", p, err)
		}
		tr, err := core.Load(fd, meta[:n])
		if err != nil {
			t.Fatalf("point %d (+%d, %v): loading tree: %v", p, armAt, mode, err)
		}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("point %d (+%d, %v): recovered tree invalid: %v", p, armAt, mode, verr)
		}
		// Recovery lands on the acked commit or the one that died mid-way
		// (its WAL batch commits atomically); assert keys both agree on.
		for idx, present := range acked {
			ifPresent, ifKnown := inFlight[idx]
			if inFlight != nil && (!ifKnown || ifPresent != present) {
				continue
			}
			v, ok := search(tr, idx)
			if present && (!ok || v != uint64(idx)) {
				t.Fatalf("point %d (+%d, %v): acknowledged key %d lost (ok=%v v=%d)", p, armAt, mode, idx, ok, v)
			}
			if !present && ok {
				t.Fatalf("point %d (+%d, %v): acknowledged delete of key %d resurrected", p, armAt, mode, idx)
			}
		}
		fd.Close()

		// Offline integrity check over the recovered bytes, through the
		// public Fsck (which re-runs recovery on its own open).
		dir := t.TempDir()
		path := filepath.Join(dir, "crash.bmeh")
		if err := os.WriteFile(path, main.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path+".wal", wal.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		report, err := Fsck(path)
		if err != nil {
			t.Fatalf("point %d: fsck: %v", p, err)
		}
		if !report.OK() {
			t.Fatalf("point %d (+%d, %v): fsck found problems: %v", p, armAt, mode, report.Problems)
		}
	}
}
