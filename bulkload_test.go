package bmeh

import (
	"path/filepath"
	"testing"
)

// bulkIter streams n records derived from benchKey.
func bulkIter(n uint64) func() (KV, bool, error) {
	i := uint64(0)
	return func() (KV, bool, error) {
		if i >= n {
			return KV{}, false, nil
		}
		i++
		return KV{Key: benchKey(i), Value: i}, true, nil
	}
}

// TestBulkLoadFsck is the durability acceptance check: a file-backed
// index built by BulkLoad must pass the offline integrity check (page
// checksums, WAL chain, structural Validate), and reopening it must
// recover every record.
func TestBulkLoadFsck(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bulk.bmeh")
	ix, err := Create(path, Options{Dims: 2, PageCapacity: 32, CacheFrames: 1024})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	st, err := ix.BulkLoad(bulkIter(n), BulkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Loaded != n {
		t.Fatalf("stats: %+v", st)
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := Fsck(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("fsck found problems: %v", rep.Problems)
	}
	if rep.Records != n {
		t.Fatalf("fsck saw %d records, want %d", rep.Records, n)
	}

	ix, err = Open(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if ix.Len() != n {
		t.Fatalf("reopened Len=%d want %d", ix.Len(), n)
	}
	for i := uint64(1); i <= n; i += 97 {
		v, ok, err := ix.Get(benchKey(i))
		if err != nil || !ok || v != i {
			t.Fatalf("key %d after reopen: v=%d ok=%v err=%v", i, v, ok, err)
		}
	}
}

// TestBulkLoadSchemeGate checks the comparison schemes reject BulkLoad.
func TestBulkLoadSchemeGate(t *testing.T) {
	ix, err := New(Options{Scheme: SchemeMDEH, Dims: 2, PageCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if _, err := ix.BulkLoad(bulkIter(1), BulkOptions{}); err == nil {
		t.Fatal("MDEH BulkLoad should be rejected")
	}
}

// TestBulkLoadConcurrentReads checks readers stay live while a bulk load
// streams in and land on the new structure afterwards.
func TestBulkLoadConcurrentReads(t *testing.T) {
	ix, err := New(Options{Dims: 2, PageCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	const resident = 2000
	for i := uint64(1); i <= resident; i++ {
		if err := ix.Insert(benchKey(i), i); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		defer close(errc)
		for i := uint64(1); ; i = i%resident + 1 {
			select {
			case <-stop:
				return
			default:
			}
			if v, ok, err := ix.Get(benchKey(i)); err != nil || !ok || v != i {
				errc <- err
				return
			}
		}
	}()
	if _, err := ix.BulkLoad(bulkIter(10000), BulkOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	close(stop)
	if err, open := <-errc; open && err != nil {
		t.Fatalf("concurrent reader failed: %v", err)
	}
	if ix.Len() != 10000 {
		t.Fatalf("Len=%d want 10000", ix.Len())
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}
