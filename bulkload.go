package bmeh

import (
	"fmt"

	"bmeh/internal/bitkey"
	"bmeh/internal/core"
	"bmeh/internal/pagestore"
)

// BulkOptions tunes Index.BulkLoad.
type BulkOptions struct {
	// MemoryBudget bounds the sort buffer in bytes; larger sets spill
	// sorted runs to temp files and merge externally. Zero means 256 MiB.
	MemoryBudget int64
	// SpillDir is where spill files go (default: the OS temp dir).
	SpillDir string
	// Workers bounds the goroutines building root subtrees in parallel;
	// zero means GOMAXPROCS.
	Workers int
}

// BulkStats reports what a BulkLoad did.
type BulkStats struct {
	// Loaded counts incoming records stored (duplicates excluded).
	Loaded int64
	// Duplicates counts incoming records dropped because their key was
	// already present — in the stream or in the index. As with Insert,
	// the first-stored value wins.
	Duplicates int64
	// SpillRuns is how many sorted runs were merged externally (0 when
	// the set fit in the memory budget).
	SpillRuns int
	// Levels is the height of the built directory.
	Levels int
	// DataPages and DirNodes count the pages of the new structure.
	DataPages int64
	DirNodes  int64
}

// bulkCheckpointPages is how many staged pages accumulate before a
// mid-build checkpoint flushes them. A checkpoint persists only
// not-yet-referenced fresh pages under the old root, so a crash after one
// costs orphaned space, never consistency.
const bulkCheckpointPages = 8192

// BulkLoad ingests every record the iterator yields by building the tree
// bottom-up from a sorted run instead of inserting top-down: records are
// sorted by pseudo-key (spilling to temp files past the memory budget),
// carved into data pages sequentially, and the directory constructed
// above them with one worker per root subtree — no splits, and the §4
// access bound holds on the result by construction. Records already in
// the index are folded into the rebuild and keep their values when the
// stream duplicates their keys.
//
// next returns one record per call and ok=false at end of stream; the
// record is consumed before the next call. The iterator is drained
// without blocking concurrent readers or writers; writers stall only for
// the sort-and-build phase. The new root becomes durable in one commit —
// BulkLoad's final Sync — so a crash at any point recovers either the
// pre-load index or the fully loaded one, never a partial state.
// BulkLoad requires the BMEH scheme and must not race with Close.
func (ix *Index) BulkLoad(next func() (KV, bool, error), opts BulkOptions) (BulkStats, error) {
	ix.mu.RLock()
	if ix.closed {
		ix.mu.RUnlock()
		return BulkStats{}, pagestore.ErrClosed
	}
	tr, ok := ix.idx.(*core.Tree)
	scheme := ix.scheme
	ix.mu.RUnlock()
	if !ok {
		return BulkStats{}, fmt.Errorf("bmeh: BulkLoad requires the BMEH scheme (index uses %v)", scheme)
	}

	scratch := make(bitkey.Vector, ix.prm.Dims)
	coreNext := func() (bitkey.Vector, uint64, bool, error) {
		kv, ok, err := next()
		if err != nil || !ok {
			return nil, 0, false, err
		}
		if err := ix.fillKey(scratch, kv.Key); err != nil {
			return nil, 0, false, err
		}
		return scratch, kv.Value, true, nil
	}
	copts := core.BulkOptions{
		MemoryBudget: opts.MemoryBudget,
		SpillDir:     opts.SpillDir,
		Workers:      opts.Workers,
	}
	if ix.mdisk != nil {
		// A bulk build writes (and re-reads) pages sequentially: hint the
		// mapping accordingly, restore the default when done.
		if err := ix.Advise(AdviseSequential); err == nil {
			defer ix.Advise(AdviseNormal)
		}
	}
	if ix.file != nil {
		// Bound staged-page memory on long loads: flush through the WAL
		// whenever enough pages pile up. The root swap has not happened,
		// so each flush persists a consistent pre-load state.
		copts.Checkpoint = func() error {
			if ix.file.Dirty() < bulkCheckpointPages {
				return nil
			}
			return ix.Sync()
		}
	}
	st, err := tr.BulkLoad(coreNext, copts)
	stats := BulkStats{
		Loaded:     st.Loaded,
		Duplicates: st.Duplicates,
		SpillRuns:  st.SpillRuns,
		Levels:     st.Levels,
		DataPages:  st.DataPages,
		DirNodes:   st.DirNodes,
	}
	if err != nil {
		return stats, translateErr(err)
	}
	// The commit point: the new root rides to disk in one group-committed
	// batch. Crash before this Sync → the pre-load index; after → the
	// loaded one.
	if err := ix.Sync(); err != nil {
		return stats, err
	}
	return stats, nil
}
