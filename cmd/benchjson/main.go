// Command benchjson converts `go test -bench` text output into a JSON
// array, one object per benchmark line, so CI can archive benchmark runs
// as machine-readable artifacts.
//
// Usage:
//
//	go test -bench=. -benchmem | benchjson -out bench.json
//	benchjson -in bench.txt -out bench.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line. Metrics holds every "value unit"
// pair after the iteration count (ns/op, B/op, allocs/op, and any custom
// b.ReportMetric units).
type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// parseLine parses one "BenchmarkX-8  N  v1 u1  v2 u2 ..." line; ok is
// false for non-benchmark lines (headers, PASS, ok ...).
func parseLine(line string) (result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[f[i+1]] = v
	}
	return r, true
}

func run(in io.Reader, out io.Writer) error {
	var results []result
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	_, err = out.Write(append(buf, '\n'))
	return err
}

func main() {
	var (
		inPath  = flag.String("in", "", "input file (default stdin)")
		outPath = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()
	in := io.Reader(os.Stdin)
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}
	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		out = f
	}
	if err := run(in, out); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
