package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkGetHot-8   3655969   334.2 ns/op   0 B/op   0 allocs/op")
	if !ok {
		t.Fatal("benchmark line rejected")
	}
	if r.Name != "BenchmarkGetHot-8" || r.Iterations != 3655969 {
		t.Fatalf("parsed %+v", r)
	}
	if r.Metrics["ns/op"] != 334.2 || r.Metrics["allocs/op"] != 0 {
		t.Fatalf("metrics %v", r.Metrics)
	}
	for _, bad := range []string{
		"goos: linux",
		"PASS",
		"ok  \tbmeh\t1.2s",
		"BenchmarkX-8 notanumber 1 ns/op",
	} {
		if _, ok := parseLine(bad); ok {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	in := `goos: linux
BenchmarkSearch/BMEH-tree-8   3476692   428.7 ns/op   0 B/op   0 allocs/op
BenchmarkParallelGet/goroutines=1-8   3485044   358.5 ns/op   0 hit%   0 B/op   0 allocs/op
PASS
`
	var out bytes.Buffer
	if err := run(strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	var results []result
	if err := json.Unmarshal(out.Bytes(), &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	if results[1].Metrics["hit%"] != 0 {
		t.Fatalf("custom metric lost: %v", results[1].Metrics)
	}
	if err := run(strings.NewReader("PASS\n"), &out); err == nil {
		t.Fatal("empty input accepted")
	}
}
