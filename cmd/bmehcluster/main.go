// Command bmehcluster launches an N-shard × M-replica BMEH cluster on
// loopback: every node is a real server process (this binary re-execs
// itself in bmehserve mode, sharing bmeh/internal/serve with the
// daemon), each shard primary is a file-backed copy-on-write index, and
// the initial shard map — pseudo-key prefix space partitioned evenly —
// is pushed to every node over the wire with SHARD_MAP_SET, exactly as
// an external control plane would.
//
// The launcher prints the seed addresses (what client.DialRouter wants)
// and runs until SIGINT/SIGTERM, then drains every child. It exists for
// development, benchmarks and the process-level cluster e2e tests; a
// real deployment runs bmehserve directly and distributes the map with
// its own tooling.
//
// Usage:
//
//	bmehcluster -shards 4 -replicas 1 -dir /tmp/cluster
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"bmeh/client"
	"bmeh/internal/cluster"
	"bmeh/internal/serve"
)

// childEnv marks a re-exec'd process as a server child, not a launcher.
const childEnv = "BMEHCLUSTER_CHILD"

func main() {
	if os.Getenv(childEnv) == "1" {
		childMain()
		return
	}
	var opts launchOptions
	flag.IntVar(&opts.Shards, "shards", 2, "initial shard count")
	flag.IntVar(&opts.Replicas, "replicas", 0, "read replicas per shard")
	flag.StringVar(&opts.Dir, "dir", "", "directory for the node index files (default: a temp dir)")
	flag.IntVar(&opts.Dims, "dims", 2, "key dimensions")
	flag.IntVar(&opts.Capacity, "b", 32, "data page capacity")
	flag.IntVar(&opts.Cache, "cache", 4096, "page cache frames per node")
	flag.DurationVar(&opts.SnapMaxPinAge, "snap-max-pin-age", time.Minute, "force-release snapshot pins older than this (0 = never)")
	verbose := flag.Bool("v", false, "stream child logs to stderr")
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}
	if opts.Dir == "" {
		dir, err := os.MkdirTemp("", "bmehcluster-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "bmehcluster:", err)
			os.Exit(1)
		}
		opts.Dir = dir
	}
	if *verbose {
		opts.ChildLog = os.Stderr
	}
	opts.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "bmehcluster: "+format+"\n", args...)
	}

	c, err := launch(os.Args[0], opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bmehcluster:", err)
		os.Exit(1)
	}
	for i, sh := range c.shards {
		fmt.Printf("shard %d: primary %s", i, sh.primary.addr)
		for _, r := range sh.replicas {
			fmt.Printf(" replica %s", r.addr)
		}
		fmt.Println()
	}
	fmt.Printf("seeds %s\n", joinSeeds(c.Seeds()))

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	opts.Logf("%v: stopping %d node(s)", s, c.Nodes())
	if err := c.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "bmehcluster:", err)
		os.Exit(1)
	}
}

func joinSeeds(seeds []string) string {
	out := ""
	for i, s := range seeds {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}

// childMain is the re-exec'd server: bmehserve's flag surface backed by
// the shared serve.Run. A dedicated FlagSet keeps the child's flags out
// of the launcher's (and, under test, the test binary's) global set.
func childMain() {
	fs := flag.NewFlagSet("bmehcluster-child", flag.ExitOnError)
	var cfg serve.Config
	fs.StringVar(&cfg.Addr, "addr", ":7707", "listen address")
	fs.StringVar(&cfg.IndexPath, "index", "", "file-backed index to serve")
	fs.BoolVar(&cfg.Create, "create", false, "create -index if it does not exist")
	fs.IntVar(&cfg.Dims, "dims", 2, "key dimensions (new indexes only)")
	fs.IntVar(&cfg.Capacity, "b", 32, "data page capacity (new indexes only)")
	fs.IntVar(&cfg.Cache, "cache", 4096, "page cache frames")
	fs.DurationVar(&cfg.SyncInterval, "sync-interval", 200*time.Microsecond, "group-commit window")
	fs.IntVar(&cfg.SyncBatch, "sync-batch", 64, "group-commit max batch")
	fs.DurationVar(&cfg.DrainTimeout, "drain-timeout", 30*time.Second, "graceful shutdown budget")
	fs.StringVar(&cfg.ReplicaOf, "replica-of", "", "follow this primary as a read replica")
	fs.BoolVar(&cfg.COW, "cow", false, "copy-on-write writers + MVCC snapshot reads")
	fs.DurationVar(&cfg.SnapMaxPinAge, "snap-max-pin-age", 0, "force-release snapshot pins older than this")
	fs.Parse(os.Args[1:])

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	if err := serve.Run(cfg, sig, nil, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "bmehcluster-child:", err)
		os.Exit(1)
	}
}

// launchOptions configures a process cluster.
type launchOptions struct {
	Shards        int
	Replicas      int
	Dir           string
	Dims          int
	Capacity      int
	Cache         int
	SnapMaxPinAge time.Duration
	ChildLog      io.Writer // optional live stream of child stderr
	Logf          func(format string, args ...any)
}

func (o *launchOptions) defaults() {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Dims <= 0 {
		o.Dims = 2
	}
	if o.Capacity <= 0 {
		o.Capacity = 32
	}
	if o.Cache <= 0 {
		o.Cache = 512
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// proc is one child server process. done closes after Wait returns, so
// kill and term are safely re-entrant.
type proc struct {
	cmd  *exec.Cmd
	addr string
	path string // index file
	args []string
	log  *bytes.Buffer
	done chan struct{}
	err  error
}

// kill delivers SIGKILL and reaps — the crash the e2e tests inject.
func (p *proc) kill() {
	select {
	case <-p.done:
		return
	default:
	}
	p.cmd.Process.Kill()
	<-p.done
}

// term drains with SIGTERM and reports the exit error.
func (p *proc) term(timeout time.Duration) error {
	select {
	case <-p.done:
		return fmt.Errorf("%s: already exited: %v", p.addr, p.err)
	default:
	}
	p.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-p.done:
		if p.err != nil {
			return fmt.Errorf("%s: unclean exit: %v\n%s", p.addr, p.err, p.log.String())
		}
		return nil
	case <-time.After(timeout):
		p.cmd.Process.Kill()
		<-p.done
		return fmt.Errorf("%s: ignored SIGTERM\n%s", p.addr, p.log.String())
	}
}

// procShard is one partition: a primary process and its replicas.
type procShard struct {
	primary  *proc
	replicas []*proc
}

// procCluster is a running cluster of real server processes plus the
// authoritative shard map the launcher distributed.
type procCluster struct {
	bin  string
	opts launchOptions

	mu     sync.Mutex
	shards []*procShard
	m      *cluster.Map
	nextID int
}

// launch starts shards×(1+replicas) server processes (re-execing bin in
// child mode), builds the uniform shard map over the primaries, and
// pushes it to every node. On error everything already started is
// killed.
func launch(bin string, opts launchOptions) (*procCluster, error) {
	opts.defaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	c := &procCluster{bin: bin, opts: opts}
	for i := 0; i < opts.Shards; i++ {
		if err := c.addShard(); err != nil {
			c.killAll()
			return nil, err
		}
	}
	nodes := make([]cluster.Node, len(c.shards))
	for i, sh := range c.shards {
		nodes[i] = cluster.Node{Primary: sh.primary.addr}
		for _, r := range sh.replicas {
			nodes[i].Replicas = append(nodes[i].Replicas, r.addr)
		}
	}
	m, err := cluster.Uniform(nodes)
	if err != nil {
		c.killAll()
		return nil, err
	}
	c.m = m
	if err := c.pushMap(); err != nil {
		c.killAll()
		return nil, err
	}
	return c, nil
}

func (c *procCluster) addShard() error {
	path := filepath.Join(c.opts.Dir, fmt.Sprintf("node-%03d.bmeh", c.nextID))
	c.nextID++
	p, err := c.startChild(path, "")
	if err != nil {
		return err
	}
	sh := &procShard{primary: p}
	for r := 0; r < c.opts.Replicas; r++ {
		rpath := filepath.Join(c.opts.Dir, fmt.Sprintf("node-%03d.bmeh", c.nextID))
		c.nextID++
		rp, err := c.startChild(rpath, p.addr)
		if err != nil {
			for _, r := range sh.replicas {
				r.kill()
			}
			p.kill()
			return err
		}
		sh.replicas = append(sh.replicas, rp)
	}
	c.shards = append(c.shards, sh)
	return nil
}

// startChild launches one server process on a fresh loopback port — a
// primary when replicaOf is empty, a replica otherwise — and waits
// until it answers STATS.
func (c *procCluster) startChild(path, replicaOf string) (*proc, error) {
	addr, err := freePort()
	if err != nil {
		return nil, err
	}
	args := []string{
		"-addr", addr, "-index", path, "-cache", fmt.Sprint(c.opts.Cache),
	}
	if replicaOf == "" {
		args = append(args,
			"-create", "-cow",
			"-dims", fmt.Sprint(c.opts.Dims), "-b", fmt.Sprint(c.opts.Capacity),
			"-sync-interval", "200us", "-sync-batch", "64",
			"-snap-max-pin-age", c.opts.SnapMaxPinAge.String(),
		)
	} else {
		args = append(args, "-replica-of", replicaOf)
	}
	return c.startProc(addr, path, args)
}

func (c *procCluster) startProc(addr, path string, args []string) (*proc, error) {
	cmd := exec.Command(c.bin, args...)
	cmd.Env = append(os.Environ(), childEnv+"=1")
	log := &bytes.Buffer{}
	if c.opts.ChildLog != nil {
		cmd.Stdout = io.MultiWriter(log, c.opts.ChildLog)
		cmd.Stderr = cmd.Stdout
	} else {
		cmd.Stdout, cmd.Stderr = log, log
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &proc{cmd: cmd, addr: addr, path: path, args: args, log: log, done: make(chan struct{})}
	go func() { p.err = cmd.Wait(); close(p.done) }()

	deadline := time.Now().Add(30 * time.Second)
	for {
		cl, err := client.Dial(addr, client.Options{
			PoolSize: 1, DialTimeout: time.Second, RequestTimeout: 2 * time.Second,
		})
		if err == nil {
			_, serr := cl.Stats()
			cl.Close()
			if serr == nil {
				return p, nil
			}
			err = serr
		}
		select {
		case <-p.done:
			return nil, fmt.Errorf("child %s exited during startup: %v\n%s", addr, p.err, log.String())
		default:
		}
		if time.Now().After(deadline) {
			p.kill()
			return nil, fmt.Errorf("child %s never became ready: %v\n%s", addr, err, log.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// restartPrimary relaunches shard i's primary with its original flags
// (the index file survives the crash; recovery replays the WAL) and
// re-pushes the current map so ownership enforcement resumes.
func (c *procCluster) restartPrimary(i int) error {
	c.mu.Lock()
	sh := c.shards[i]
	m := c.m
	c.mu.Unlock()
	p, err := c.startProc(sh.primary.addr, sh.primary.path, sh.primary.args)
	if err != nil {
		return err
	}
	c.mu.Lock()
	sh.primary = p
	c.mu.Unlock()
	return pushMapTo(p.addr, uint32(i), m)
}

// Seeds returns every primary address.
func (c *procCluster) Seeds() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	seeds := make([]string, len(c.shards))
	for i, sh := range c.shards {
		seeds[i] = sh.primary.addr
	}
	return seeds
}

// Nodes returns the total process count.
func (c *procCluster) Nodes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, sh := range c.shards {
		n += 1 + len(sh.replicas)
	}
	return n
}

// Map returns the map the launcher last distributed.
func (c *procCluster) Map() *cluster.Map {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.Clone()
}

// pushMap distributes the current map to every node, primary first
// within each shard; replicas hold it too so foreign reads answer
// WrongShard rather than serving rows the shard no longer owns.
func (c *procCluster) pushMap() error {
	c.mu.Lock()
	shards := append([]*procShard(nil), c.shards...)
	m := c.m
	c.mu.Unlock()
	for i, sh := range shards {
		if err := pushMapTo(sh.primary.addr, uint32(i), m); err != nil {
			return err
		}
		for _, r := range sh.replicas {
			if err := pushMapTo(r.addr, uint32(i), m); err != nil {
				return err
			}
		}
	}
	return nil
}

func pushMapTo(addr string, id uint32, m *cluster.Map) error {
	cl, err := client.Dial(addr, client.Options{PoolSize: 1})
	if err != nil {
		return err
	}
	defer cl.Close()
	_, err = cl.SetShardMap(id, m)
	return err
}

// Close drains every child: replicas first (they stop following), then
// primaries. Returns the first failure but keeps going.
func (c *procCluster) Close() error {
	c.mu.Lock()
	shards := c.shards
	c.shards = nil
	c.mu.Unlock()
	var firstErr error
	for _, sh := range shards {
		for _, r := range sh.replicas {
			if err := r.term(30 * time.Second); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if err := sh.primary.term(30 * time.Second); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (c *procCluster) killAll() {
	for _, sh := range c.shards {
		for _, r := range sh.replicas {
			r.kill()
		}
		sh.primary.kill()
	}
	c.shards = nil
}

// freePort grabs an ephemeral loopback port and releases it for a child
// to bind.
func freePort() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}
