package main

// Process-level cluster e2e: real server processes (the test binary
// re-execs itself in child mode) joined by real TCP, a router driving
// traffic, and kill -9 landing on a shard primary mid-stream. Reads
// must keep flowing off the shard's replica with zero errors, the
// restarted primary must recover its WAL and rejoin, and after clean
// shutdowns every store must be Fsck-clean with primary and replica
// byte-identical per shard.

import (
	"bytes"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bmeh"
	"bmeh/client"
)

func TestMain(m *testing.M) {
	if os.Getenv(childEnv) == "1" {
		childMain()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// e2eKeys deals n distinct 2-d keys spread across the whole Morton
// space so both shards of a 2-shard cluster hold data.
func e2eKeys(n int) []bmeh.Key {
	keys := make([]bmeh.Key, n)
	rnd := uint64(0x9e3779b97f4a7c15)
	for i := range keys {
		rnd ^= rnd << 13
		rnd ^= rnd >> 7
		rnd ^= rnd << 17
		keys[i] = bmeh.Key{rnd & 0xffffffff, (rnd >> 32) & 0xffffffff}
	}
	return keys
}

func nodeSeq(t *testing.T, addr string) uint64 {
	t.Helper()
	cl, err := client.Dial(addr, client.Options{PoolSize: 1, RequestTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	return st.CommitSeq
}

func awaitNodeSeq(t *testing.T, addr string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if got := nodeSeq(t, addr); got >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %s stuck below seq %d", addr, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestClusterProcessKillPrimary: 2 shards × 1 replica as real
// processes; kill -9 one shard primary while routed GETs stream.
func TestClusterProcessKillPrimary(t *testing.T) {
	if testing.Short() {
		t.Skip("process e2e test")
	}
	c, err := launch(os.Args[0], launchOptions{
		Shards: 2, Replicas: 1, Dir: t.TempDir(),
		Capacity: 16, Cache: 512, SnapMaxPinAge: time.Minute,
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	defer func() {
		if !closed {
			c.killAll()
		}
	}()

	r, err := client.DialRouter(c.Seeds(), client.Options{
		PoolSize: 2, Retries: 5, RequestTimeout: 5 * time.Second,
		RedialBackoff: 20 * time.Millisecond, RedialBackoffMax: 200 * time.Millisecond,
		HealthInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	keys := e2eKeys(400)
	for i, k := range keys {
		if err := r.Put(k, uint64(i)); err != nil {
			t.Fatalf("seed put %d: %v", i, err)
		}
	}

	// Readers must never fail: the dark shard's replica carries them.
	var gets, getErrs atomic.Uint64
	var firstGetErr atomic.Value
	stopRead := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := seed; ; i++ {
				select {
				case <-stopRead:
					return
				default:
				}
				k := keys[i%len(keys)]
				v, ok, err := r.Get(k)
				gets.Add(1)
				if err != nil || !ok || v != uint64(i%len(keys)) {
					getErrs.Add(1)
					if err != nil {
						firstGetErr.CompareAndSwap(nil, err)
					}
				}
			}
		}(w * 31)
	}
	// A writer hammers fresh keys so the SIGKILL lands mid group-commit;
	// its errors while one shard is dark are expected.
	var puts, putErrs atomic.Uint64
	stopWrite := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stopWrite:
				return
			default:
			}
			k := bmeh.Key{uint64(i)<<8 | 0x5, uint64(i*2654435761) & 0xffffffff}
			if err := r.Put(k, uint64(i)); err == nil {
				puts.Add(1)
			} else {
				putErrs.Add(1)
				time.Sleep(5 * time.Millisecond)
			}
		}
	}()

	time.Sleep(500 * time.Millisecond) // steady state, commits flowing
	c.shards[0].primary.kill()
	time.Sleep(500 * time.Millisecond) // shard 0 dark, reads on its replica
	if err := c.restartPrimary(0); err != nil {
		t.Fatalf("restart primary: %v", err)
	}
	time.Sleep(500 * time.Millisecond) // recovered primary takes writes again
	close(stopWrite)
	close(stopRead)
	wg.Wait()

	if g := gets.Load(); g == 0 {
		t.Fatal("no GETs issued across the kill")
	}
	if e := getErrs.Load(); e != 0 {
		t.Fatalf("GET availability: %d of %d reads failed (first err: %v)",
			e, gets.Load(), firstGetErr.Load())
	}
	if puts.Load() == 0 {
		t.Fatal("no puts succeeded")
	}

	// Seeded records all survive the crash and recovery.
	for i, k := range keys {
		v, ok, err := r.Get(k)
		if err != nil || !ok || v != uint64(i) {
			t.Fatalf("get %d after recovery: v=%d ok=%v err=%v", i, v, ok, err)
		}
	}

	// Converge each shard's replica to its primary, then shut down
	// cleanly — replicas first.
	for i, sh := range c.shards {
		cl, err := client.Dial(sh.primary.addr, client.Options{PoolSize: 1, RequestTimeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		// The first syncs may still hit the redial backoff window of the
		// restarted endpoint.
		deadline := time.Now().Add(10 * time.Second)
		for {
			if err := cl.Sync(); err == nil {
				break
			} else if time.Now().After(deadline) {
				t.Fatalf("sync shard %d: %v", i, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
		cl.Close()
		awaitNodeSeq(t, sh.replicas[0].addr, nodeSeq(t, sh.primary.addr))
	}
	shards := c.shards
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	closed = true

	// Every store Fsck-clean; primary and replica byte-identical.
	for i, sh := range shards {
		for _, p := range []*proc{sh.primary, sh.replicas[0]} {
			rep, err := bmeh.Fsck(p.path)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Fatalf("fsck %s: %v", p.path, rep.Problems)
			}
		}
		pb, err := os.ReadFile(sh.primary.path)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := os.ReadFile(sh.replicas[0].path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pb, rb) {
			t.Fatalf("shard %d stores diverged: primary %d bytes, replica %d bytes", i, len(pb), len(rb))
		}
	}
}

// TestClusterProcessShardIdentity: every node of a launched cluster
// reports its shard identity over STATS — the wire surface bmehcli
// stats -connect renders.
func TestClusterProcessShardIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("process e2e test")
	}
	c, err := launch(os.Args[0], launchOptions{
		Shards: 2, Replicas: 1, Dir: t.TempDir(), Capacity: 16, Cache: 256, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	m := c.Map()
	for i, sh := range c.shards {
		lo, hi := m.Range(i)
		addrs := append([]string{sh.primary.addr}, sh.replicas[0].addr)
		for _, addr := range addrs {
			cl, err := client.Dial(addr, client.Options{PoolSize: 1, RequestTimeout: 5 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			st, err := cl.Stats()
			cl.Close()
			if err != nil {
				t.Fatal(err)
			}
			if !st.Clustered {
				t.Fatalf("node %s not clustered", addr)
			}
			if st.ShardID != i || st.ShardLo != lo || st.ShardHi != hi {
				t.Fatalf("node %s identity = shard %d [%#x,%#x), want shard %d [%#x,%#x)",
					addr, st.ShardID, st.ShardLo, st.ShardHi, i, lo, hi)
			}
			if st.ShardMapEpoch != m.Epoch {
				t.Fatalf("node %s epoch = %d, want %d", addr, st.ShardMapEpoch, m.Epoch)
			}
		}
	}
}
