package main

// The -bulkload mode measures the bottom-up bulk builder against the
// incremental write path on the file backend: one timed InsertBatch run
// (1024-record batches, the PR 2 ingest baseline) and one timed BulkLoad
// per worker count, all at the same record count on the same machine, so
// the speedup column divides like-for-like. -json records the sweep
// (conventionally BENCH_bulkload.json at the repo root) together with
// the recorded 4811 ns/record reference figure from BENCH_hotpath.json,
// so cross-machine readers can see both the local ratio and the
// historical baseline.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"bmeh"
)

// refBatchNsPerRec is the file-backed InsertBatch per-record figure
// recorded in BENCH_hotpath.json ("after", FileInsert per record) — the
// fixed reference point the bulk loader is asked to beat by ≥10×
// machine-to-machine comparisons aside.
const refBatchNsPerRec = 4811.0

var bulkWorkerSweep = []int{1, 2, 4}

// BulkloadResult is one timed run.
type BulkloadResult struct {
	Mode      string  `json:"mode"`    // "insert_batch" or "bulk_load"
	Workers   int     `json:"workers"` // 0 for insert_batch
	Records   int     `json:"records"`
	ElapsedMS float64 `json:"elapsed_ms"`
	NsPerRec  float64 `json:"ns_per_record"`
	// SpeedupVsBatch divides the same-machine insert_batch ns/record by
	// this run's (1.0 for the baseline itself).
	SpeedupVsBatch float64 `json:"speedup_vs_batch"`
	SpillRuns      int     `json:"spill_runs,omitempty"`
	Levels         int     `json:"levels,omitempty"`
}

// BulkloadReport is the full comparison as written by -json.
type BulkloadReport struct {
	Records       int     `json:"records"`
	BatchSize     int     `json:"insert_batch_size"`
	BatchNsPerRec float64 `json:"insert_batch_ns_per_record"`
	BestBulkNsNs  float64 `json:"best_bulk_ns_per_record"`
	BestSpeedup   float64 `json:"best_speedup_vs_batch"`
	ReferenceNs   float64 `json:"reference_batch_ns_per_record"`
	SpeedupVsRef  float64 `json:"best_speedup_vs_reference"`
	PageCapacity  int     `json:"page_capacity"`
	NumCPU        int     `json:"num_cpu"`
	// SingleCPU flags runs on a one-core machine, where worker counts
	// above 1 time-slice a single core and the worker sweep says nothing
	// about parallel scaling.
	SingleCPU      bool             `json:"single_cpu"`
	GoMaxProcs     int              `json:"gomaxprocs"`
	GoVersion      string           `json:"go_version"`
	Backend        string           `json:"backend"`
	KernelPageSize int              `json:"kernel_page_size"`
	Results        []BulkloadResult `json:"results"`
}

func newBulkBenchIndex(dir string, name string) (*bmeh.Index, error) {
	return bmeh.Create(filepath.Join(dir, name), bmeh.Options{
		Dims: 2, PageCapacity: 32, CacheFrames: 4096,
	})
}

// runBulkload executes the comparison, prints a table to w, and returns
// the report for optional -json serialization.
func runBulkload(w io.Writer, n int, progress func(string, ...interface{})) (*BulkloadReport, error) {
	dir, err := os.MkdirTemp("", "bmeh-bulkload-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	const batchSize = 1024
	rep := &BulkloadReport{
		Records:        n,
		BatchSize:      batchSize,
		ReferenceNs:    refBatchNsPerRec,
		PageCapacity:   32,
		NumCPU:         runtime.NumCPU(),
		SingleCPU:      runtime.NumCPU() == 1,
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		GoVersion:      runtime.Version(),
		Backend:        "file",
		KernelPageSize: os.Getpagesize(),
	}

	// Baseline: the incremental path, 1024-record group-committed batches.
	progress("bulkload: insert_batch baseline (N=%d)...\n", n)
	ix, err := newBulkBenchIndex(dir, "batch.bmeh")
	if err != nil {
		return nil, err
	}
	batch := make([]bmeh.KV, 0, batchSize)
	start := time.Now()
	for i := 1; i <= n; i++ {
		v := uint64(i)
		batch = append(batch, bmeh.KV{Key: concKey(v), Value: v})
		if len(batch) == batchSize || i == n {
			if _, err := ix.InsertBatch(batch); err != nil {
				ix.Close()
				return nil, err
			}
			batch = batch[:0]
		}
	}
	batchElapsed := time.Since(start)
	if err := ix.Close(); err != nil {
		return nil, err
	}
	rep.BatchNsPerRec = float64(batchElapsed.Nanoseconds()) / float64(n)
	rep.Results = append(rep.Results, BulkloadResult{
		Mode:           "insert_batch",
		Records:        n,
		ElapsedMS:      float64(batchElapsed.Microseconds()) / 1e3,
		NsPerRec:       rep.BatchNsPerRec,
		SpeedupVsBatch: 1,
	})

	// The bulk builder, swept over worker counts.
	for _, workers := range bulkWorkerSweep {
		progress("bulkload: bulk_load workers=%d (N=%d)...\n", workers, n)
		ix, err := newBulkBenchIndex(dir, fmt.Sprintf("bulk%d.bmeh", workers))
		if err != nil {
			return nil, err
		}
		i := uint64(0)
		nn := uint64(n)
		start := time.Now()
		st, err := ix.BulkLoad(func() (bmeh.KV, bool, error) {
			if i >= nn {
				return bmeh.KV{}, false, nil
			}
			i++
			return bmeh.KV{Key: concKey(i), Value: i}, true, nil
		}, bmeh.BulkOptions{Workers: workers})
		elapsed := time.Since(start)
		if err != nil {
			ix.Close()
			return nil, err
		}
		if err := ix.Close(); err != nil {
			return nil, err
		}
		if st.Loaded != int64(n) {
			return nil, fmt.Errorf("bulk_load workers=%d: loaded %d of %d", workers, st.Loaded, n)
		}
		r := BulkloadResult{
			Mode:      "bulk_load",
			Workers:   workers,
			Records:   n,
			ElapsedMS: float64(elapsed.Microseconds()) / 1e3,
			NsPerRec:  float64(elapsed.Nanoseconds()) / float64(n),
			SpillRuns: st.SpillRuns,
			Levels:    st.Levels,
		}
		r.SpeedupVsBatch = rep.BatchNsPerRec / r.NsPerRec
		rep.Results = append(rep.Results, r)
		if rep.BestBulkNsNs == 0 || r.NsPerRec < rep.BestBulkNsNs {
			rep.BestBulkNsNs = r.NsPerRec
		}
	}
	rep.BestSpeedup = rep.BatchNsPerRec / rep.BestBulkNsNs
	rep.SpeedupVsRef = refBatchNsPerRec / rep.BestBulkNsNs

	fmt.Fprintf(w, "bulk load vs incremental batch (N=%d, file backend, NumCPU=%d)\n", n, rep.NumCPU)
	if rep.SingleCPU {
		fmt.Fprintf(w, "NOTE: single-core machine — worker counts > 1 time-slice one core,\n")
		fmt.Fprintf(w, "so the worker sweep does not measure parallel scaling.\n")
	}
	fmt.Fprintf(w, "%-13s %8s %12s %12s %10s\n", "mode", "workers", "ms", "ns/record", "speedup")
	for _, r := range rep.Results {
		workers := "-"
		if r.Workers > 0 {
			workers = fmt.Sprint(r.Workers)
		}
		fmt.Fprintf(w, "%-13s %8s %12.1f %12.0f %9.2fx\n",
			r.Mode, workers, r.ElapsedMS, r.NsPerRec, r.SpeedupVsBatch)
	}
	fmt.Fprintf(w, "reference: recorded insert_batch baseline %.0f ns/record → best bulk %.2fx\n",
		refBatchNsPerRec, rep.SpeedupVsRef)
	return rep, nil
}

func writeBulkloadJSON(path string, rep *BulkloadReport) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
