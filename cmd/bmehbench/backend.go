package main

// The -backend mode compares the storage engines head to head on one
// machine: the pread backend (BackendFile, with its byte pool at the
// benchmark's frame count) against the mmap backend (BackendMmap, whose
// byte pool is the OS page cache) across four phases:
//
//   - bulk_load: bottom-up build of N records (mmap runs it under
//     MADV_SEQUENTIAL via BulkLoad's built-in hint).
//   - cold_get: point reads on a freshly reopened index — decoded caches
//     empty, every page read is a first touch (madvise RANDOM on mmap).
//   - warm_miss_get: point reads with the decoded caches disabled — the
//     byte layer is warm, so this isolates the per-read page path:
//     pread/pool copy + decode versus zero-copy slice + decode.
//   - range_scan: a full scan (madvise SEQUENTIAL on mmap), decoded
//     caches still disabled.
//
// The report (conventionally BENCH_mmap.json at the repo root) carries
// the mmap read-path counters so the "zero per-read page copies" claim is
// asserted from measurement, not assumed: zero_copy_ok requires every
// mmap read in the Get phases to have been served as a slice of the
// mapping.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"bmeh"
)

// backendPoolFrames is the pread backend's byte-pool size for the sweep.
// The mmap backend runs with no pool by design; "equal pool size" means
// the pread side is given at least the whole working set, so neither
// backend is starved of byte-cache capacity.
const backendPoolFrames = 8192

// BackendResult is one (backend, phase) timing.
type BackendResult struct {
	Backend   string  `json:"backend"`
	Phase     string  `json:"phase"`
	Advice    string  `json:"advice,omitempty"` // madvise hint active (mmap only)
	Ops       int     `json:"ops"`
	ElapsedMS float64 `json:"elapsed_ms"`
	NsPerOp   float64 `json:"ns_per_op"`
}

// BackendReport is the BENCH_mmap.json schema.
type BackendReport struct {
	Records        int    `json:"records"`
	GetOps         int    `json:"get_ops_per_phase"`
	PageCapacity   int    `json:"page_capacity"`
	PoolFrames     int    `json:"file_backend_pool_frames"`
	KernelPageSize int    `json:"kernel_page_size"`
	NumCPU         int    `json:"num_cpu"`
	GoMaxProcs     int    `json:"gomaxprocs"`
	GoVersion      string `json:"go_version"`
	Backend        string `json:"backend"` // "file+mmap": this report is the comparison

	// MmapSupported is false where OpenMappedFile degraded to pread; the
	// sweep still runs but the mmap column measures the copying fallback.
	MmapSupported bool   `json:"mmap_supported"`
	ZeroCopyReads uint64 `json:"mmap_zero_copy_reads"`
	CopiedReads   uint64 `json:"mmap_copied_reads"`
	StagedReads   uint64 `json:"mmap_staged_reads"`
	// ZeroCopyOK asserts the acceptance property: the mapping was live
	// and no mmap-side read in the measured phases fell back to a copy.
	ZeroCopyOK bool `json:"zero_copy_ok"`

	// The mmap+huge leg re-runs the mmap sweep under MADV_HUGEPAGE with
	// the mapping mlocked. Both are requests the environment may refuse
	// (THP disabled; RLIMIT_MEMLOCK), so the report records what actually
	// held — a leg that ran unlocked is labeled as such, not presented as
	// a huge-page result.
	HugeAdviseOK bool   `json:"huge_advise_ok"`
	MlockOK      bool   `json:"mlock_ok"`
	MlockError   string `json:"mlock_error,omitempty"`

	// SpeedupMmap is file ns/op divided by mmap ns/op, per phase;
	// SpeedupHuge is mmap ns/op divided by mmap+huge ns/op.
	SpeedupMmap map[string]float64 `json:"speedup_mmap_vs_file"`
	SpeedupHuge map[string]float64 `json:"speedup_huge_vs_mmap"`

	Results []BackendResult `json:"results"`
}

// runBackend executes the sweep, prints a table to w, and returns the
// report for optional -json serialization.
func runBackend(w io.Writer, n int, progress func(string, ...interface{})) (*BackendReport, error) {
	dir, err := os.MkdirTemp("", "bmeh-backend-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	getOps := n
	if getOps > 20000 {
		getOps = 20000
	}
	rep := &BackendReport{
		Records:        n,
		GetOps:         getOps,
		PageCapacity:   32,
		PoolFrames:     backendPoolFrames,
		KernelPageSize: os.Getpagesize(),
		NumCPU:         runtime.NumCPU(),
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		GoVersion:      runtime.Version(),
		Backend:        "file+mmap",
		MmapSupported:  bmeh.MmapAvailable(),
		SpeedupMmap:    map[string]float64{},
		SpeedupHuge:    map[string]float64{},
	}

	// One shuffled probe order shared by every Get phase on both
	// backends, so the comparison reads the same keys in the same order.
	probe := rand.New(rand.NewSource(19860301)).Perm(n)[:getOps]

	timings := map[string]map[string]float64{} // backend → phase → ns/op
	record := func(backend, phase, advice string, ops int, elapsed time.Duration) {
		r := BackendResult{
			Backend:   backend,
			Phase:     phase,
			Advice:    advice,
			Ops:       ops,
			ElapsedMS: float64(elapsed.Microseconds()) / 1e3,
			NsPerOp:   float64(elapsed.Nanoseconds()) / float64(ops),
		}
		rep.Results = append(rep.Results, r)
		if timings[backend] == nil {
			timings[backend] = map[string]float64{}
		}
		timings[backend][phase] = r.NsPerOp
	}

	configs := []struct {
		name string
		be   bmeh.Backend
		huge bool // MADV_HUGEPAGE + mlock on top of the mmap backend
	}{
		{"file", bmeh.BackendFile, false},
		{"mmap", bmeh.BackendMmap, false},
		{"mmap+huge", bmeh.BackendMmap, true},
	}
	for _, cfg := range configs {
		name, be := cfg.name, cfg.be
		frames := backendPoolFrames
		if be == bmeh.BackendMmap {
			frames = 0
		}
		path := filepath.Join(dir, name+".bmeh")
		// Applied after every (re)open of this leg's index: the huge-page
		// hint survives remapping, but a fresh open is a fresh mapping.
		applyHuge := func(ix *bmeh.Index) {
			if !cfg.huge {
				return
			}
			rep.HugeAdviseOK = ix.Advise(bmeh.AdviseHugePage) == nil
			if err := ix.Mlock(true); err != nil {
				rep.MlockOK = false
				rep.MlockError = err.Error()
			} else {
				rep.MlockOK = true
			}
		}

		// Phase 1: bulk load. (BulkLoad self-advises SEQUENTIAL on mmap.)
		progress("backend %s: bulk_load (N=%d)...\n", name, n)
		ix, err := bmeh.Create(path, bmeh.Options{
			Dims: 2, PageCapacity: 32, CacheFrames: frames, Backend: be,
		})
		if err != nil {
			return nil, err
		}
		applyHuge(ix)
		i := uint64(0)
		start := time.Now()
		st, err := ix.BulkLoad(func() (bmeh.KV, bool, error) {
			if i >= uint64(n) {
				return bmeh.KV{}, false, nil
			}
			i++
			return bmeh.KV{Key: concKey(i), Value: i}, true, nil
		}, bmeh.BulkOptions{})
		elapsed := time.Since(start)
		if err != nil {
			ix.Close()
			return nil, err
		}
		if st.Loaded != int64(n) {
			ix.Close()
			return nil, fmt.Errorf("backend %s: loaded %d of %d", name, st.Loaded, n)
		}
		if err := ix.Close(); err != nil {
			return nil, err
		}
		hugeTag := ""
		if cfg.huge {
			hugeTag = "+huge"
		}
		advice := ""
		if be == bmeh.BackendMmap {
			advice = "sequential" + hugeTag
		}
		record(name, "bulk_load", advice, n, elapsed)

		// Phase 2: cold Get — fresh open, all application caches empty.
		progress("backend %s: cold_get (%d ops)...\n", name, getOps)
		ix, err = bmeh.OpenBackend(path, frames, be)
		if err != nil {
			return nil, err
		}
		applyHuge(ix)
		advice = ""
		if be == bmeh.BackendMmap {
			advice = "random" + hugeTag
			if err := ix.Advise(bmeh.AdviseRandom); err != nil {
				ix.Close()
				return nil, err
			}
		}
		get := func(phase string) error {
			start := time.Now()
			for _, p := range probe {
				k := concKey(uint64(p) + 1)
				_, ok, err := ix.Get(k)
				if err != nil {
					return err
				}
				if !ok {
					return fmt.Errorf("backend %s %s: key %d missing", name, phase, p)
				}
			}
			record(name, phase, advice, getOps, time.Since(start))
			return nil
		}
		if err := get("cold_get"); err != nil {
			ix.Close()
			return nil, err
		}

		// Phase 3: warm-miss Get — decoded caches off, byte layer warm.
		progress("backend %s: warm_miss_get (%d ops)...\n", name, getOps)
		if err := ix.SetDecodedCacheCapacity(0, 0); err != nil {
			ix.Close()
			return nil, err
		}
		if err := get("warm_miss_get"); err != nil {
			ix.Close()
			return nil, err
		}

		// Phase 4: full scan, decoded caches still off.
		progress("backend %s: range_scan...\n", name)
		if be == bmeh.BackendMmap {
			advice = "sequential" + hugeTag
			if err := ix.Advise(bmeh.AdviseSequential); err != nil {
				ix.Close()
				return nil, err
			}
		}
		seen := 0
		start = time.Now()
		if err := ix.Scan(func(bmeh.Key, uint64) bool { seen++; return true }); err != nil {
			ix.Close()
			return nil, err
		}
		elapsed = time.Since(start)
		if seen != n {
			ix.Close()
			return nil, fmt.Errorf("backend %s: scan saw %d of %d", name, seen, n)
		}
		record(name, "range_scan", advice, n, elapsed)

		if name == "mmap" {
			// The zero-copy acceptance counters come from the plain mmap
			// leg; the huge leg's reads go through the identical path.
			if ms, ok := ix.MmapStats(); ok {
				rep.ZeroCopyReads = ms.ZeroCopyReads
				rep.CopiedReads = ms.CopiedReads
				rep.StagedReads = ms.StagedReads
				rep.ZeroCopyOK = ms.ZeroCopy && ms.CopiedReads == 0 && ms.ZeroCopyReads > 0
			}
		}
		if err := ix.Close(); err != nil {
			return nil, err
		}
	}

	for phase, fileNs := range timings["file"] {
		if mmapNs := timings["mmap"][phase]; mmapNs > 0 {
			rep.SpeedupMmap[phase] = fileNs / mmapNs
		}
	}
	for phase, mmapNs := range timings["mmap"] {
		if hugeNs := timings["mmap+huge"][phase]; hugeNs > 0 {
			rep.SpeedupHuge[phase] = mmapNs / hugeNs
		}
	}

	fmt.Fprintf(w, "storage backend comparison (N=%d, %d get ops/phase, pool %d frames, NumCPU=%d)\n",
		n, getOps, backendPoolFrames, rep.NumCPU)
	if !rep.MmapSupported {
		fmt.Fprintf(w, "NOTE: no mmap on this platform — the mmap column measures the copying fallback.\n")
	}
	fmt.Fprintf(w, "%-9s %-15s %-11s %12s %12s\n", "backend", "phase", "advice", "ms", "ns/op")
	for _, r := range rep.Results {
		adv := r.Advice
		if adv == "" {
			adv = "-"
		}
		fmt.Fprintf(w, "%-9s %-15s %-11s %12.1f %12.0f\n", r.Backend, r.Phase, adv, r.ElapsedMS, r.NsPerOp)
	}
	for _, phase := range []string{"bulk_load", "cold_get", "warm_miss_get", "range_scan"} {
		if s, ok := rep.SpeedupMmap[phase]; ok {
			fmt.Fprintf(w, "mmap speedup, %-15s %.2fx\n", phase+":", s)
		}
	}
	for _, phase := range []string{"bulk_load", "cold_get", "warm_miss_get", "range_scan"} {
		if s, ok := rep.SpeedupHuge[phase]; ok {
			fmt.Fprintf(w, "huge-page speedup, %-15s %.2fx\n", phase+":", s)
		}
	}
	fmt.Fprintf(w, "mmap reads: %d zero-copy, %d copied, %d staged (zero_copy_ok=%v)\n",
		rep.ZeroCopyReads, rep.CopiedReads, rep.StagedReads, rep.ZeroCopyOK)
	fmt.Fprintf(w, "huge leg: madvise(HUGEPAGE) ok=%v, mlock ok=%v", rep.HugeAdviseOK, rep.MlockOK)
	if rep.MlockError != "" {
		fmt.Fprintf(w, " (%s)", rep.MlockError)
	}
	fmt.Fprintln(w)
	return rep, nil
}

func writeBackendJSON(path string, rep *BackendReport) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
