// Command bmehbench regenerates the paper's evaluation (Otoo, "Balanced
// Multidimensional Extendible Hash Tree", PODS 1986): Tables 2-4, the
// directory-growth Figures 6-7, the Theorem 4 range-cost experiment, and
// the extra ablations documented in DESIGN.md.
//
// Usage:
//
//	bmehbench -all                 # everything at full size (N=40,000)
//	bmehbench -table 3             # one table
//	bmehbench -figure 6            # one growth figure
//	bmehbench -rangecost           # Theorem 4 experiment
//	bmehbench -ablation            # BMEH node-size (φ) sweep
//	bmehbench -table 2 -n 8000     # scaled-down run
//	bmehbench -concurrent -json BENCH_concurrent.json
//	                               # parallel get/insert/mixed sweep
//	bmehbench -mvcc -json BENCH_mvcc.json
//	                               # reader throughput under a saturating
//	                               # writer, latched vs copy-on-write
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bmeh/internal/sim"
)

func main() {
	var (
		table     = flag.Int("table", 0, "reproduce paper table N (2, 3 or 4)")
		figure    = flag.Int("figure", 0, "reproduce paper figure N (6 or 7)")
		rangeCost = flag.Bool("rangecost", false, "run the Theorem 4 range-cost experiment")
		ablation  = flag.Bool("ablation", false, "run the BMEH-tree node-size (φ) sweep")
		noise     = flag.Bool("noise", false, "run the §3 degeneration experiment (noise-burst keys)")
		cache     = flag.Bool("cache", false, "run the buffer-pool (physical I/O) ablation")
		conc      = flag.Bool("concurrent", false, "run the parallel get/insert/mixed sweep (1/4/16 goroutines)")
		netBench  = flag.Bool("net", false, "run the loopback network serving benchmark (16 pipelined clients)")
		replBench = flag.Bool("repl", false, "run the replication benchmark (catch-up + availability across a primary restart)")
		bulkload  = flag.Bool("bulkload", false, "run the bulk-load vs incremental-batch comparison (file backend)")
		mvcc      = flag.Bool("mvcc", false, "run the MVCC sweep (reader throughput under a saturating writer, latched vs cow)")
		backend   = flag.Bool("backend", false, "run the storage-backend comparison (pread vs mmap: bulk load, cold/warm-miss gets, range scan)")
		clBench   = flag.Bool("cluster", false, "run the sharded-cluster benchmark (GET/PUT scaling at 1/2/4 shards + availability through an online split)")
		jsonPath  = flag.String("json", "", "with -concurrent/-net/-repl: also write the report to this JSON file")
		window    = flag.Duration("window", 500*time.Millisecond, "with -concurrent/-net/-repl: measurement window per configuration")
		asCSV     = flag.Bool("csv", false, "emit figures as CSV for external plotting")
		all       = flag.Bool("all", false, "run every table, figure and extra experiment")
		n         = flag.Int("n", 40000, "keys to insert per run (paper: 40000)")
		measure   = flag.Int("measure", 4000, "tail window for averaged measures (paper: 4000)")
		every     = flag.Int("every", 1000, "growth-curve sampling interval (figures)")
		seed      = flag.Int64("seed", 19860301, "workload seed")
		quiet     = flag.Bool("q", false, "suppress progress messages")
	)
	flag.Parse()

	progress := func(format string, args ...interface{}) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format, args...)
		}
	}
	start := time.Now()
	ran := false

	runTable := func(num int) {
		ran = true
		spec, err := sim.TableSpecFor(num)
		fail(err)
		tr, err := sim.RunTable(spec, *n, *measure, *seed, func(s sim.Scheme, b int) {
			progress("table %d: %v b=%d...\n", num, s, b)
		})
		fail(err)
		tr.Format(os.Stdout)
		fmt.Println()
	}
	runFigure := func(num int) {
		ran = true
		spec, err := sim.FigureSpecFor(num)
		fail(err)
		fr, err := sim.RunFigure(spec, *n, *every, *seed, func(s sim.Scheme) {
			progress("figure %d: %v...\n", num, s)
		})
		fail(err)
		if *asCSV {
			fr.FormatCSV(os.Stdout)
		} else {
			fr.Format(os.Stdout)
		}
		fmt.Println()
	}
	runRange := func() {
		ran = true
		progress("range-cost experiment (Theorem 4)...\n")
		pts, err := sim.RunRange(sim.Uniform, 2, 16, *n, 50, *seed)
		fail(err)
		sim.FormatRange(os.Stdout, pts)
		fmt.Println()
	}
	runAblation := func() {
		ran = true
		for _, dist := range []sim.Distribution{sim.Uniform, sim.Normal} {
			progress("φ sweep (%v)...\n", dist)
			rows, err := sim.RunPhiAblation(dist, 2, 8, *n, *seed)
			fail(err)
			fmt.Printf("(%v keys, d=2, b=8, N=%d)\n", dist, *n)
			sim.FormatAblation(os.Stdout, rows)
			fmt.Println()
		}
	}
	runCache := func() {
		ran = true
		progress("buffer-pool ablation...\n")
		rows, err := sim.RunCacheAblation(sim.Uniform, 2, 8, *n, *seed)
		fail(err)
		sim.FormatCache(os.Stdout, rows, *n)
		fmt.Println()
	}
	runConc := func() {
		ran = true
		nn := *n
		if nn > 20000 {
			nn = 20000 // warm working set; larger N only lengthens warmup
		}
		rep, err := runConcurrent(os.Stdout, nn, *window, progress)
		fail(err)
		fmt.Println()
		if *jsonPath != "" {
			fail(writeConcurrentJSON(*jsonPath, rep))
			progress("wrote %s\n", *jsonPath)
		}
	}
	runNet := func() {
		ran = true
		nn := *n
		if nn > 20000 {
			nn = 20000 // preload working set; larger N only lengthens setup
		}
		rep, err := runNet(os.Stdout, nn, *window, progress)
		fail(err)
		fmt.Println()
		if *jsonPath != "" {
			fail(writeNetJSON(*jsonPath, rep))
			progress("wrote %s\n", *jsonPath)
		}
	}
	runReplBench := func() {
		ran = true
		nn := *n
		if nn > 20000 {
			nn = 20000 // preload working set; larger N only lengthens setup
		}
		rep, err := runRepl(os.Stdout, nn, *window, progress)
		fail(err)
		fmt.Println()
		if *jsonPath != "" {
			fail(writeReplJSON(*jsonPath, rep))
			progress("wrote %s\n", *jsonPath)
		}
	}
	runBulkloadBench := func() {
		ran = true
		rep, err := runBulkload(os.Stdout, *n, progress)
		fail(err)
		fmt.Println()
		if *jsonPath != "" {
			fail(writeBulkloadJSON(*jsonPath, rep))
			progress("wrote %s\n", *jsonPath)
		}
	}
	runBackendBench := func() {
		ran = true
		rep, err := runBackend(os.Stdout, *n, progress)
		fail(err)
		fmt.Println()
		if *jsonPath != "" {
			fail(writeBackendJSON(*jsonPath, rep))
			progress("wrote %s\n", *jsonPath)
		}
	}
	runClusterBench := func() {
		ran = true
		nn := *n
		if nn > 20000 {
			nn = 20000 // preload working set; larger N only lengthens setup
		}
		rep, err := runCluster(os.Stdout, nn, *window, progress)
		fail(err)
		fmt.Println()
		if *jsonPath != "" {
			fail(writeClusterJSON(*jsonPath, rep))
			progress("wrote %s\n", *jsonPath)
		}
	}
	runMVCCBench := func() {
		ran = true
		nn := *n
		if nn > 20000 {
			nn = 20000 // warm working set; larger N only lengthens preload
		}
		rep, err := runMVCC(os.Stdout, nn, *window, progress)
		fail(err)
		fmt.Println()
		if *jsonPath != "" {
			fail(writeMVCCJSON(*jsonPath, rep))
			progress("wrote %s\n", *jsonPath)
		}
	}
	runNoise := func() {
		ran = true
		progress("§3 degeneration experiment...\n")
		nn := *n
		if nn > 20000 {
			nn = 20000 // the flat schemes overflow long before this
		}
		pts, err := sim.RunNoise(nn, nn/16, 50, 16, *seed)
		fail(err)
		sim.FormatNoise(os.Stdout, pts)
		fmt.Println()
	}

	switch {
	case *all:
		for _, t := range sim.Tables {
			runTable(t.Number)
		}
		for _, f := range sim.Figures {
			runFigure(f.Number)
		}
		runRange()
		runAblation()
		runCache()
		runNoise()
		runConc()
	default:
		if *table != 0 {
			runTable(*table)
		}
		if *figure != 0 {
			runFigure(*figure)
		}
		if *rangeCost {
			runRange()
		}
		if *ablation {
			runAblation()
		}
		if *noise {
			runNoise()
		}
		if *cache {
			runCache()
		}
		if *conc {
			runConc()
		}
		if *netBench {
			runNet()
		}
		if *replBench {
			runReplBench()
		}
		if *bulkload {
			runBulkloadBench()
		}
		if *backend {
			runBackendBench()
		}
		if *mvcc {
			runMVCCBench()
		}
		if *clBench {
			runClusterBench()
		}
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	progress("done in %v\n", time.Since(start).Round(time.Millisecond))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bmehbench:", err)
		os.Exit(1)
	}
}
