package main

// The -net mode measures the serving layer end to end over loopback TCP:
// a file-backed index behind bmeh/internal/server, driven by the pooled
// pipelined client. Three numbers matter:
//
//   - get_ops_per_sec: 16 clients, each keeping a window of async GETs
//     in flight (pipelining hides the per-op round trip).
//   - put_single_ops_per_sec: one client issuing synchronous PUTs, one
//     at a time — every op pays a full round trip AND a full WAL commit,
//     the worst case the coalescer exists to avoid.
//   - put_pipelined_ops_per_sec: 16 clients pipelining async PUTs; the
//     server folds them into InsertBatch calls so hundreds of acks share
//     one group-committed fsync.
//
// put_speedup = put_pipelined / put_single is the write-coalescing win.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"bmeh"
	"bmeh/client"
	"bmeh/internal/server"
)

const (
	netClients = 16
	netDepth   = 64 // async calls in flight per client
)

// NetReport is the BENCH_server.json schema.
type NetReport struct {
	Keys           int    `json:"keys"`
	Clients        int    `json:"clients"`
	Depth          int    `json:"pipeline_depth"`
	WindowMS       int64  `json:"window_ms_per_run"`
	NumCPU         int    `json:"num_cpu"`
	GoMaxProcs     int    `json:"gomaxprocs"`
	GoVersion      string `json:"go_version"`
	Backend        string `json:"backend"`
	KernelPageSize int    `json:"kernel_page_size"`

	GetOpsPerSec          float64 `json:"get_ops_per_sec"`
	PutSingleOpsPerSec    float64 `json:"put_single_ops_per_sec"`
	PutPipelinedOpsPerSec float64 `json:"put_pipelined_ops_per_sec"`
	PutSpeedup            float64 `json:"put_speedup"`
}

func netKey(i int) bmeh.Key {
	return bmeh.Key{uint64(i), uint64((i*2654435761 + 13) % 1000003)}
}

// pump keeps depth async calls in flight on cl until deadline, then
// drains; returns completed (successful) calls.
func pump(cl *client.Client, depth int, deadline time.Time, issue func(seq int) *client.Call) (int64, error) {
	inflight := make(chan *client.Call, depth)
	seq := 0
	for ; seq < depth; seq++ {
		inflight <- issue(seq)
	}
	var done int64
	for time.Now().Before(deadline) {
		call := <-inflight
		if err := call.Wait(); err != nil {
			return done, err
		}
		done++
		inflight <- issue(seq)
		seq++
	}
	for i := 0; i < depth; i++ {
		call := <-inflight
		if err := call.Wait(); err != nil {
			return done, err
		}
		done++
	}
	return done, nil
}

// runNet stands up the server on loopback over a file-backed temp index
// preloaded with n keys and runs the three measurements.
func runNet(w io.Writer, n int, window time.Duration, progress func(string, ...interface{})) (*NetReport, error) {
	dir, err := os.MkdirTemp("", "bmehnet")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	ix, err := bmeh.Create(filepath.Join(dir, "bench.bmeh"), bmeh.Options{
		Dims:         2,
		PageCapacity: 32,
		CacheFrames:  8192,
		SyncPolicy:   bmeh.SyncPolicy{Interval: 200 * time.Microsecond, MaxBatch: 256},
	})
	if err != nil {
		return nil, err
	}
	defer ix.Close()

	progress("net: preloading %d keys...\n", n)
	const chunk = 4096
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		kvs := make([]bmeh.KV, 0, hi-lo)
		for i := lo; i < hi; i++ {
			kvs = append(kvs, bmeh.KV{Key: netKey(i), Value: uint64(i)})
		}
		if _, err := ix.InsertBatch(kvs); err != nil {
			return nil, err
		}
	}

	srv := server.New(ix, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() { <-serveDone }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	addr := ln.Addr().String()

	rep := &NetReport{
		Keys:           n,
		Clients:        netClients,
		Depth:          netDepth,
		WindowMS:       window.Milliseconds(),
		NumCPU:         runtime.NumCPU(),
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		GoVersion:      runtime.Version(),
		Backend:        "file",
		KernelPageSize: os.Getpagesize(),
	}
	fmt.Fprintf(w, "network serving benchmark (N=%d, %d clients × depth %d, window=%v)\n",
		n, netClients, netDepth, window)

	clients := make([]*client.Client, netClients)
	for i := range clients {
		cl, err := client.Dial(addr, client.Options{PoolSize: 1, RequestTimeout: 30 * time.Second})
		if err != nil {
			return nil, err
		}
		defer cl.Close()
		clients[i] = cl
	}

	// fanOut runs fn on every client concurrently and sums completions.
	fanOut := func(fn func(c int, cl *client.Client) (int64, error)) (int64, error) {
		var (
			wg    sync.WaitGroup
			mu    sync.Mutex
			total int64
			first error
		)
		for c, cl := range clients {
			wg.Add(1)
			go func(c int, cl *client.Client) {
				defer wg.Done()
				done, err := fn(c, cl)
				mu.Lock()
				total += done
				if err != nil && first == nil {
					first = err
				}
				mu.Unlock()
			}(c, cl)
		}
		wg.Wait()
		return total, first
	}

	// Pipelined GETs.
	progress("net: pipelined GET...\n")
	start := time.Now()
	deadline := start.Add(window)
	got, err := fanOut(func(c int, cl *client.Client) (int64, error) {
		return pump(cl, netDepth, deadline, func(seq int) *client.Call {
			return cl.GetAsync(netKey((c*1000003 + seq*7919) % n))
		})
	})
	if err != nil {
		return nil, err
	}
	rep.GetOpsPerSec = float64(got) / time.Since(start).Seconds()

	// Unpipelined single-PUT: one client, synchronous, fresh keys.
	progress("net: unpipelined PUT...\n")
	base := n + 1
	start = time.Now()
	deadline = start.Add(window)
	var single int64
	for i := 0; time.Now().Before(deadline); i++ {
		if err := clients[0].Put(bmeh.Key{uint64(base + i), uint64(0xFFFFFFFF)}, uint64(i)); err != nil {
			return nil, err
		}
		single++
	}
	rep.PutSingleOpsPerSec = float64(single) / time.Since(start).Seconds()

	// Pipelined, server-coalesced PUTs: fresh key stripe per client.
	progress("net: pipelined PUT...\n")
	base += 1 << 24
	start = time.Now()
	deadline = start.Add(window)
	put, err := fanOut(func(c int, cl *client.Client) (int64, error) {
		stripe := base + c<<20
		return pump(cl, netDepth, deadline, func(seq int) *client.Call {
			return cl.PutAsync(bmeh.Key{uint64(stripe + seq), uint64(0xFFFFFFFE)}, uint64(seq))
		})
	})
	if err != nil {
		return nil, err
	}
	rep.PutPipelinedOpsPerSec = float64(put) / time.Since(start).Seconds()
	if rep.PutSingleOpsPerSec > 0 {
		rep.PutSpeedup = rep.PutPipelinedOpsPerSec / rep.PutSingleOpsPerSec
	}

	fmt.Fprintf(w, "%-22s %14s\n", "workload", "ops/sec")
	fmt.Fprintf(w, "%-22s %14.0f\n", "get (pipelined)", rep.GetOpsPerSec)
	fmt.Fprintf(w, "%-22s %14.0f\n", "put (single, sync)", rep.PutSingleOpsPerSec)
	fmt.Fprintf(w, "%-22s %14.0f   (%.1fx single)\n", "put (pipelined)", rep.PutPipelinedOpsPerSec, rep.PutSpeedup)
	return rep, nil
}

func writeNetJSON(path string, rep *NetReport) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
