package main

// The -concurrent mode measures the scalable read path outside the
// testing-package harness: for each workload (get / insert / mixed) and
// each goroutine count it runs a fixed wall-clock window against an
// in-memory index and reports ops/sec, ns/op, the sharded pool's hit
// ratio and the speedup relative to the single-goroutine run. -json
// records the sweep (plus GOMAXPROCS / NumCPU, so results from
// single-core machines are legible as such) to a file, conventionally
// BENCH_concurrent.json at the repo root.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bmeh"
)

var concGoroutines = []int{1, 4, 16}

// cmix64 is splitmix64's finalizer, used to spread sequential indices over
// the key space (mirrors the bench_concurrent_test.go workload).
func cmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func concKey(i uint64) bmeh.Key {
	h := cmix64(i)
	return bmeh.Key{h & 0xffffffff, h >> 32}
}

// ConcurrentResult is one (workload, goroutines) cell of the sweep.
type ConcurrentResult struct {
	Workload   string  `json:"workload"`
	Goroutines int     `json:"goroutines"`
	Ops        uint64  `json:"ops"`
	NsPerOp    float64 `json:"ns_per_op"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	HitRate    float64 `json:"hit_rate"`
	SpeedupVs1 float64 `json:"speedup_vs_1"`
}

// ConcurrentReport is the full sweep as written by -json.
type ConcurrentReport struct {
	Keys     int   `json:"keys"`
	WindowMS int64 `json:"window_ms_per_run"`
	NumCPU   int   `json:"num_cpu"`
	// SingleCPU flags sweeps run on a one-core machine, where goroutine
	// counts above 1 only time-slice a single core and speedup_vs_1 says
	// nothing about scalability.
	SingleCPU      bool               `json:"single_cpu"`
	GoMaxProcs     int                `json:"gomaxprocs"`
	GoVersion      string             `json:"go_version"`
	Backend        string             `json:"backend"`
	KernelPageSize int                `json:"kernel_page_size"`
	CacheFrames    int                `json:"cache_frames"`
	Results        []ConcurrentResult `json:"results"`
}

func newConcIndex(n int) (*bmeh.Index, error) {
	ix, err := bmeh.New(bmeh.Options{Dims: 2, PageCapacity: 32, CacheFrames: 8192})
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		if err := ix.Insert(concKey(uint64(i)), uint64(i)); err != nil {
			ix.Close()
			return nil, err
		}
	}
	// Touch every key once so the measurement window starts warm.
	for i := 0; i < n; i++ {
		if _, ok, err := ix.Get(concKey(uint64(i))); err != nil || !ok {
			ix.Close()
			return nil, fmt.Errorf("warmup key %d: ok=%v err=%v", i, ok, err)
		}
	}
	return ix, nil
}

// runConcWindow runs body on g goroutines for the window and returns total
// ops completed. GOMAXPROCS is pinned to g so the count is exact even when
// g exceeds the machine's cores.
func runConcWindow(g int, window time.Duration, body func(worker uint64, i uint64) error) (uint64, error) {
	prev := runtime.GOMAXPROCS(g)
	defer runtime.GOMAXPROCS(prev)
	var (
		stop atomic.Bool
		ops  atomic.Uint64
		wg   sync.WaitGroup
		errc = make(chan error, g)
	)
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w uint64) {
			defer wg.Done()
			var done uint64
			for i := cmix64(w); !stop.Load(); i++ {
				if err := body(w, i); err != nil {
					errc <- err
					break
				}
				done++
			}
			ops.Add(done)
		}(uint64(w))
	}
	time.Sleep(window)
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errc:
		return 0, err
	default:
	}
	return ops.Load(), nil
}

func concHitRate(ix *bmeh.Index, before bmeh.PoolStats) float64 {
	after, ok := ix.PoolStats()
	if !ok {
		return 0
	}
	d := bmeh.PoolStats{Hits: after.Hits - before.Hits, Misses: after.Misses - before.Misses}
	return d.HitRatio()
}

// runConcurrent executes the sweep, prints a table to w, and returns the
// report for optional -json serialization.
func runConcurrent(w io.Writer, n int, window time.Duration, progress func(string, ...interface{})) (*ConcurrentReport, error) {
	rep := &ConcurrentReport{
		Keys:           n,
		WindowMS:       window.Milliseconds(),
		NumCPU:         runtime.NumCPU(),
		SingleCPU:      runtime.NumCPU() == 1,
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		GoVersion:      runtime.Version(),
		Backend:        "memory",
		KernelPageSize: os.Getpagesize(),
		CacheFrames:    8192,
	}
	fmt.Fprintf(w, "concurrent sweep (N=%d, window=%v, NumCPU=%d)\n", n, window, rep.NumCPU)
	if rep.SingleCPU {
		fmt.Fprintf(w, "NOTE: single-core machine — goroutine counts > 1 time-slice one core,\n")
		fmt.Fprintf(w, "so the speedup column is omitted (it would not measure scalability).\n")
		fmt.Fprintf(w, "%-8s %12s %12s %12s %8s\n", "workload", "goroutines", "ops/sec", "ns/op", "hit%")
	} else {
		fmt.Fprintf(w, "%-8s %12s %12s %12s %8s %10s\n", "workload", "goroutines", "ops/sec", "ns/op", "hit%", "speedup")
	}

	for _, workload := range []string{"get", "insert", "mixed"} {
		var base float64
		for _, g := range concGoroutines {
			var (
				ops uint64
				hit float64
				err error
			)
			progress("concurrent: %s goroutines=%d...\n", workload, g)
			switch workload {
			case "get":
				ix, e := newConcIndex(n)
				if e != nil {
					return nil, e
				}
				before, _ := ix.PoolStats()
				ops, err = runConcWindow(g, window, func(worker, i uint64) error {
					k := concKey(cmix64(i) % uint64(n))
					_, ok, e := ix.Get(k)
					if e != nil {
						return e
					}
					if !ok {
						return fmt.Errorf("get: key missing")
					}
					return nil
				})
				hit = concHitRate(ix, before)
				ix.Close()
			case "insert":
				ix, e := bmeh.New(bmeh.Options{Dims: 2, PageCapacity: 32, CacheFrames: 8192})
				if e != nil {
					return nil, e
				}
				var seq atomic.Uint64
				before, _ := ix.PoolStats()
				ops, err = runConcWindow(g, window, func(_, _ uint64) error {
					v := seq.Add(1)
					return ix.Insert(concKey(v), v)
				})
				hit = concHitRate(ix, before)
				ix.Close()
			case "mixed":
				ix, e := newConcIndex(n)
				if e != nil {
					return nil, e
				}
				var seq atomic.Uint64
				seq.Store(uint64(n))
				before, _ := ix.PoolStats()
				ops, err = runConcWindow(g, window, func(worker, i uint64) error {
					if i%10 == 0 {
						v := seq.Add(1)
						return ix.Insert(concKey(v), v)
					}
					_, _, e := ix.Get(concKey(cmix64(i) % uint64(n)))
					return e
				})
				hit = concHitRate(ix, before)
				ix.Close()
			}
			if err != nil {
				return nil, fmt.Errorf("%s at %d goroutines: %w", workload, g, err)
			}
			secs := window.Seconds()
			r := ConcurrentResult{
				Workload:   workload,
				Goroutines: g,
				Ops:        ops,
				OpsPerSec:  float64(ops) / secs,
				HitRate:    hit,
			}
			if ops > 0 {
				r.NsPerOp = secs * 1e9 / float64(ops)
			}
			if g == 1 {
				base = r.OpsPerSec
			}
			if base > 0 {
				r.SpeedupVs1 = r.OpsPerSec / base
			}
			rep.Results = append(rep.Results, r)
			if rep.SingleCPU {
				fmt.Fprintf(w, "%-8s %12d %12.0f %12.0f %7.1f%%\n",
					r.Workload, r.Goroutines, r.OpsPerSec, r.NsPerOp, r.HitRate*100)
			} else {
				fmt.Fprintf(w, "%-8s %12d %12.0f %12.0f %7.1f%% %9.2fx\n",
					r.Workload, r.Goroutines, r.OpsPerSec, r.NsPerOp, r.HitRate*100, r.SpeedupVs1)
			}
		}
	}
	return rep, nil
}

func writeConcurrentJSON(path string, rep *ConcurrentReport) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
