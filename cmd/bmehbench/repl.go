package main

// The -repl mode measures the replication subsystem end to end over
// loopback TCP:
//
//   - catchup_keys_per_sec: a primary is preloaded with N keys; a fresh
//     replica subscribes, receives the seeding snapshot, and the rate is
//     keys over the time until its applied sequence matches the
//     primary's.
//   - availability: while GETs stream against the cluster client
//     (primary + replica), the primary is stopped and restarted. Reads
//     fail over to the replica, so get_errors should be zero even
//     though the primary spends downtime_ms unreachable.
//
// The report is the BENCH_repl.json schema.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"time"

	"bmeh"
	"bmeh/client"
	"bmeh/internal/repl"
	"bmeh/internal/server"
)

// ReplReport is the BENCH_repl.json schema.
type ReplReport struct {
	Keys           int    `json:"keys"`
	WindowMS       int64  `json:"window_ms"`
	NumCPU         int    `json:"num_cpu"`
	GoMaxProcs     int    `json:"gomaxprocs"`
	GoVersion      string `json:"go_version"`
	Backend        string `json:"backend"`
	KernelPageSize int    `json:"kernel_page_size"`

	CatchupSeconds    float64 `json:"catchup_seconds"`
	CatchupKeysPerSec float64 `json:"catchup_keys_per_sec"`

	GetsTotal    int64   `json:"gets_total"`
	GetErrors    int64   `json:"get_errors"`
	Availability float64 `json:"availability"`
	DowntimeMS   int64   `json:"primary_downtime_ms"`
}

// runRepl stands up a primary with n keys, seeds a replica from it,
// then restarts the primary under a streaming GET load on the cluster
// client.
func runRepl(w io.Writer, n int, window time.Duration, progress func(string, ...interface{})) (*ReplReport, error) {
	dir, err := os.MkdirTemp("", "bmehrepl")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	ix, err := bmeh.Create(filepath.Join(dir, "primary.bmeh"), bmeh.Options{
		Dims:         2,
		PageCapacity: 32,
		CacheFrames:  8192,
		SyncPolicy:   bmeh.SyncPolicy{Interval: 200 * time.Microsecond, MaxBatch: 256},
	})
	if err != nil {
		return nil, err
	}
	defer ix.Close()

	progress("repl: preloading %d keys...\n", n)
	const chunk = 4096
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		kvs := make([]bmeh.KV, 0, hi-lo)
		for i := lo; i < hi; i++ {
			kvs = append(kvs, bmeh.KV{Key: netKey(i), Value: uint64(i)})
		}
		if _, err := ix.InsertBatch(kvs); err != nil {
			return nil, err
		}
	}

	hub := repl.NewHub(ix, repl.HubOptions{})
	defer hub.Close()
	if err := ix.SetReplPublisher(hub.Publish); err != nil {
		return nil, err
	}
	defer ix.SetReplPublisher(nil)

	startPrimary := func(addr string) (*server.Server, net.Listener, chan error, error) {
		srv := server.New(ix, server.Config{Hub: hub})
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, nil, nil, err
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ln) }()
		return srv, ln, done, nil
	}
	stopPrimary := func(srv *server.Server, done chan error) {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-done
	}

	srv, ln, done, err := startPrimary("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	primaryAddr := ln.Addr().String()

	rep := &ReplReport{
		Keys:           n,
		WindowMS:       window.Milliseconds(),
		NumCPU:         runtime.NumCPU(),
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		GoVersion:      runtime.Version(),
		Backend:        "file",
		KernelPageSize: os.Getpagesize(),
	}
	fmt.Fprintf(w, "replication benchmark (N=%d, window=%v)\n", n, window)

	// Catch-up: a brand-new replica seeds itself by snapshot.
	progress("repl: replica catch-up...\n")
	target, err := bmeh.NewReplicaTarget(filepath.Join(dir, "replica.bmeh"), 8192)
	if err != nil {
		stopPrimary(srv, done)
		return nil, err
	}
	defer target.Close()
	follower := repl.NewReplica(target, primaryAddr, repl.ReplicaOptions{})
	catchStart := time.Now()
	follower.Start()
	defer follower.Close()
	if !follower.AwaitSeq(ix.ReplCommitSeq(), 120*time.Second) {
		stopPrimary(srv, done)
		return nil, fmt.Errorf("replica did not catch up to seq %d", ix.ReplCommitSeq())
	}
	rep.CatchupSeconds = time.Since(catchStart).Seconds()
	rep.CatchupKeysPerSec = float64(n) / rep.CatchupSeconds

	// Serve reads from the replica.
	rsrv := server.New(target.Index(), server.Config{
		ReadOnly: true,
		ReplicaStatus: func() (uint64, uint64, bool) {
			st := follower.Status()
			return st.PrimarySeq, st.AppliedSeq, st.Connected
		},
	})
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		stopPrimary(srv, done)
		return nil, err
	}
	rdone := make(chan error, 1)
	go func() { rdone <- rsrv.Serve(rln) }()
	defer func() { <-rdone }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		rsrv.Shutdown(ctx)
	}()

	// GET availability across a primary restart: the cluster client
	// routes reads to the replica, so the restart should be invisible.
	progress("repl: GETs across primary restart...\n")
	cl, err := client.DialCluster(primaryAddr, []string{rln.Addr().String()}, client.Options{
		PoolSize:       2,
		Retries:        5,
		RequestTimeout: 10 * time.Second,
		HealthInterval: 100 * time.Millisecond,
	})
	if err != nil {
		stopPrimary(srv, done)
		return nil, err
	}
	defer cl.Close()

	var gets, errs atomic.Int64
	stop := make(chan struct{})
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_, ok, err := cl.Get(netKey(i % n))
			gets.Add(1)
			if err != nil || !ok {
				errs.Add(1)
			}
		}
	}()

	time.Sleep(window / 2) // steady state before the restart
	downStart := time.Now()
	stopPrimary(srv, done)
	time.Sleep(window / 2) // primary dark
	srv, _, done, err = startPrimary(primaryAddr)
	if err != nil {
		close(stop)
		<-loadDone
		return nil, err
	}
	rep.DowntimeMS = time.Since(downStart).Milliseconds()
	time.Sleep(window / 2) // steady state after the restart
	close(stop)
	<-loadDone
	stopPrimary(srv, done)

	rep.GetsTotal = gets.Load()
	rep.GetErrors = errs.Load()
	if rep.GetsTotal > 0 {
		rep.Availability = 1 - float64(rep.GetErrors)/float64(rep.GetsTotal)
	}

	fmt.Fprintf(w, "%-28s %14.0f keys/sec (%.2fs)\n", "replica catch-up", rep.CatchupKeysPerSec, rep.CatchupSeconds)
	fmt.Fprintf(w, "%-28s %14d gets, %d error(s), availability %.4f\n",
		"GETs across primary restart", rep.GetsTotal, rep.GetErrors, rep.Availability)
	fmt.Fprintf(w, "%-28s %14dms\n", "primary downtime", rep.DowntimeMS)
	return rep, nil
}

func writeReplJSON(path string, rep *ReplReport) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
