package main

// The -cluster mode measures the sharded tier end to end: an in-process
// loopback cluster (bmeh/internal/cluster/local — real wire servers,
// real TCP, one file-backed COW index per shard) driven through the
// cluster-aware router.
//
//   - scaling: aggregate routed GET and PUT ops/sec at 1, 2 and 4
//     shards over the same preloaded keyspace. On a multi-core host the
//     4-shard GET rate should beat 1-shard materially (independent
//     indexes, independent latches); on a single-CPU host the ratio is
//     recorded honestly and BENCH_cluster.json says single_cpu so the
//     CI gate knows not to demand parallel speedup.
//   - availability: a 1-shard cluster is split online (median boundary,
//     replica seed + catch-up, fence, epoch flip) while GETs stream
//     through the router. get_errors must be zero: the split's only
//     client-visible cost is retry latency.
//
// The report is the BENCH_cluster.json schema, gated by
// checkbench -cluster.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bmeh"
	"bmeh/client"
	"bmeh/internal/cluster/local"
)

// ClusterShardResult is one row of the scaling sweep.
type ClusterShardResult struct {
	Shards       int     `json:"shards"`
	GetOpsPerSec float64 `json:"get_ops_per_sec"`
	PutOpsPerSec float64 `json:"put_ops_per_sec"`
}

// ClusterReport is the BENCH_cluster.json schema.
type ClusterReport struct {
	Keys       int    `json:"keys"`
	WindowMS   int64  `json:"window_ms"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	SingleCPU  bool   `json:"single_cpu"`

	Results []ClusterShardResult `json:"results"`
	// GetScaling4x is get_ops_per_sec at 4 shards over 1 shard.
	GetScaling4x float64 `json:"get_scaling_4x_over_1x"`

	SplitGetsTotal    int64   `json:"split_gets_total"`
	SplitGetErrors    int64   `json:"split_get_errors"`
	SplitAvailability float64 `json:"split_availability"`
	SplitSeconds      float64 `json:"split_seconds"`
	SplitShardsAfter  int     `json:"split_shards_after"`
}

// clusterKey deals the i-th key of a deterministic sequence spread
// across the whole 2-d Morton space, so every shard of every sweep
// configuration owns a fair share.
func clusterKeys(n int) []bmeh.Key {
	keys := make([]bmeh.Key, n)
	rnd := uint64(0x9e3779b97f4a7c15)
	for i := range keys {
		rnd ^= rnd << 13
		rnd ^= rnd >> 7
		rnd ^= rnd << 17
		keys[i] = bmeh.Key{rnd & 0xffffffff, (rnd >> 32) & 0xffffffff}
	}
	return keys
}

// clusterRouterOptions tunes the per-shard clients for a bench run.
func clusterRouterOptions() client.Options {
	return client.Options{
		PoolSize:       2,
		Retries:        5,
		RequestTimeout: 10 * time.Second,
		RedialBackoff:  20 * time.Millisecond,
		HealthInterval: 100 * time.Millisecond,
	}
}

// startBenchCluster launches a cluster, dials a router on it, and
// preloads keys through routed batches.
func startBenchCluster(shards int, keys []bmeh.Key) (*local.Cluster, *client.Router, error) {
	dir, err := os.MkdirTemp("", "bmehcluster")
	if err != nil {
		return nil, nil, err
	}
	c, err := local.Start(dir, local.Options{Shards: shards, Capacity: 32, Cache: 4096})
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	r, err := client.DialRouter(c.Seeds(), clusterRouterOptions())
	if err != nil {
		c.Close()
		os.RemoveAll(dir)
		return nil, nil, err
	}
	const chunk = 2048
	for lo := 0; lo < len(keys); lo += chunk {
		hi := lo + chunk
		if hi > len(keys) {
			hi = len(keys)
		}
		kvs := make([]bmeh.KV, 0, hi-lo)
		for i := lo; i < hi; i++ {
			kvs = append(kvs, bmeh.KV{Key: keys[i], Value: uint64(i)})
		}
		if _, err := r.Batch(kvs); err != nil {
			r.Close()
			c.Close()
			os.RemoveAll(dir)
			return nil, nil, err
		}
	}
	return c, r, nil
}

// measureOps runs workers hammering op until window elapses and returns
// aggregate ops/sec. The first error aborts the measurement.
func measureOps(workers int, window time.Duration, op func(worker, seq int) error) (float64, error) {
	var ops atomic.Int64
	var firstErr atomic.Value
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := op(w, i); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				ops.Add(1)
			}
		}(w)
	}
	start := time.Now()
	time.Sleep(window)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if err, ok := firstErr.Load().(error); ok {
		return 0, err
	}
	return float64(ops.Load()) / elapsed, nil
}

// runCluster sweeps shard counts 1/2/4 and then measures availability
// through an online split.
func runCluster(w io.Writer, n int, window time.Duration, progress func(string, ...interface{})) (*ClusterReport, error) {
	// One deterministic key stream: the first n keys are the preload /
	// GET working set, the tail feeds the PUT measurement with keys that
	// are fresh (Insert semantics — a re-Put would be ErrDuplicate).
	const putPool = 1 << 21
	stream := clusterKeys(n + putPool)
	keys, fresh := stream[:n], stream[n:]
	workers := 2 * runtime.GOMAXPROCS(0)
	if workers > 16 {
		workers = 16
	}
	if workers < 4 {
		workers = 4
	}
	rep := &ClusterReport{
		Keys:       n,
		WindowMS:   window.Milliseconds(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		SingleCPU:  runtime.NumCPU() == 1,
	}
	fmt.Fprintf(w, "cluster benchmark (N=%d, window=%v, %d workers)\n", n, window, workers)

	for _, shards := range []int{1, 2, 4} {
		progress("cluster: %d shard(s)...\n", shards)
		c, r, err := startBenchCluster(shards, keys)
		if err != nil {
			return nil, err
		}
		getRate, err := measureOps(workers, window, func(worker, seq int) error {
			k := keys[(worker*7919+seq)%len(keys)]
			_, ok, err := r.Get(k)
			if err == nil && !ok {
				return fmt.Errorf("%d shards: preloaded key missing", shards)
			}
			return err
		})
		if err == nil {
			var putRate float64
			putRate, err = measureOps(workers, window, func(worker, seq int) error {
				i := (seq*workers + worker) % len(fresh)
				err := r.Put(fresh[i], uint64(i))
				if errors.Is(err, bmeh.ErrDuplicate) {
					return nil // pool wrapped; the round-trip still counts
				}
				return err
			})
			rep.Results = append(rep.Results, ClusterShardResult{
				Shards: shards, GetOpsPerSec: getRate, PutOpsPerSec: putRate,
			})
			fmt.Fprintf(w, "%-28s %14.0f gets/sec %14.0f puts/sec\n",
				fmt.Sprintf("%d shard(s)", shards), getRate, putRate)
		}
		r.Close()
		c.Close()
		if err != nil {
			return nil, err
		}
	}
	if len(rep.Results) == 3 && rep.Results[0].GetOpsPerSec > 0 {
		rep.GetScaling4x = rep.Results[2].GetOpsPerSec / rep.Results[0].GetOpsPerSec
		fmt.Fprintf(w, "%-28s %14.2fx (num_cpu=%d)\n", "GET scaling 4x/1x", rep.GetScaling4x, rep.NumCPU)
	}

	// Availability through an online hot-shard split.
	progress("cluster: GETs across an online split...\n")
	c, r, err := startBenchCluster(1, keys)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	defer r.Close()
	var gets, errs atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := seed; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := keys[i%len(keys)]
				v, ok, err := r.Get(k)
				gets.Add(1)
				if err != nil || !ok || v != uint64(i%len(keys)) {
					errs.Add(1)
				}
			}
		}(w * 31)
	}
	splitStart := time.Now()
	splitErr := c.Split(0)
	rep.SplitSeconds = time.Since(splitStart).Seconds()
	time.Sleep(window / 2) // keep reading through the post-flip window
	close(stop)
	wg.Wait()
	if splitErr != nil {
		return nil, fmt.Errorf("cluster: split: %w", splitErr)
	}
	rep.SplitGetsTotal = gets.Load()
	rep.SplitGetErrors = errs.Load()
	if rep.SplitGetsTotal > 0 {
		rep.SplitAvailability = 1 - float64(rep.SplitGetErrors)/float64(rep.SplitGetsTotal)
	}
	rep.SplitShardsAfter = c.Shards()
	fmt.Fprintf(w, "%-28s %14d gets, %d error(s), availability %.4f\n",
		"GETs across online split", rep.SplitGetsTotal, rep.SplitGetErrors, rep.SplitAvailability)
	fmt.Fprintf(w, "%-28s %14.2fs, %d shard(s) after\n", "split duration", rep.SplitSeconds, rep.SplitShardsAfter)
	return rep, nil
}

func writeClusterJSON(path string, rep *ClusterReport) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
