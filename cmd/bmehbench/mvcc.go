package main

// The -mvcc mode measures what the COW write mode buys readers: for each
// write mode (latched / cow) it runs a saturating writer — a rolling
// insert/delete churn — and measures reader throughput beside it, for
// point gets and for box range scans. Under WriteModeCOW the range
// readers run against pinned snapshots (one pin per scan, so the pin
// cost is inside the measurement) and verify snapshot consistency as
// they go: a periodic full-box scan must see exactly Len-at-pin records.
// -json records the sweep to a file, conventionally BENCH_mvcc.json at
// the repo root; checkbench gates CI on its structural fields.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bmeh"
)

// mvccReaders is the reader goroutine count per cell; the writer is one
// more goroutine on top.
const mvccReaders = 4

// MVCCResult is one (mode, workload) cell of the sweep.
type MVCCResult struct {
	Mode     string `json:"mode"`     // "latched" or "cow"
	Workload string `json:"workload"` // "get" or "range"
	Readers  int    `json:"readers"`
	// ReaderOps counts completed reader operations (one Get, or one box
	// scan) across all reader goroutines.
	ReaderOps       uint64  `json:"reader_ops"`
	ReaderOpsPerSec float64 `json:"reader_ops_per_sec"`
	ReaderNsPerOp   float64 `json:"reader_ns_per_op"`
	// WriterOpsPerSec is the churn rate the saturating writer sustained
	// beside the readers (inserts + deletes per second).
	WriterOpsPerSec float64 `json:"writer_ops_per_sec"`
	// SnapshotConsistent reports whether every consistency probe during
	// the run saw exactly the pinned epoch's records. Verified (and so
	// meaningful) only for cow/range cells; false elsewhere — the latched
	// read path makes no such promise.
	SnapshotConsistent bool `json:"snapshot_consistent"`
}

// MVCCModeStats captures a mode's MVCC counters after its cells finish
// and every snapshot is closed: both must drain to zero or the epoch
// reclamation leaked.
type MVCCModeStats struct {
	Mode             string `json:"mode"`
	Epoch            uint64 `json:"epoch"`
	PinnedEpochs     int    `json:"pinned_epochs"`
	ReclaimablePages int    `json:"reclaimable_pages"`
}

// MVCCReport is the full sweep as written by -json.
type MVCCReport struct {
	Keys     int   `json:"keys"`
	WindowMS int64 `json:"window_ms_per_run"`
	NumCPU   int   `json:"num_cpu"`
	// SingleCPU flags sweeps run on a one-core machine: reader and writer
	// goroutines time-slice one core, so cross-mode throughput ratios
	// measure scheduling, not concurrency.
	SingleCPU  bool            `json:"single_cpu"`
	GoMaxProcs int             `json:"gomaxprocs"`
	GoVersion  string          `json:"go_version"`
	Results    []MVCCResult    `json:"results"`
	ModeStats  []MVCCModeStats `json:"mode_stats"`
}

// mvccBox returns a query box whose expected selectivity is ~frac of a
// cmix64-uniform keyspace: per-dimension width sqrt(frac) of the 32-bit
// axis, anchored pseudo-randomly by i.
func mvccBox(i uint64, frac float64) (lo, hi bmeh.Key) {
	const axis = 1 << 32
	w := uint64(math.Sqrt(frac) * axis)
	a, b := cmix64(i), cmix64(i+0x9e3779b9)
	lo = bmeh.Key{a % (axis - w), b % (axis - w)}
	hi = bmeh.Key{lo[0] + w, lo[1] + w}
	return lo, hi
}

// runMVCC executes the sweep, prints a table to w, and returns the report
// for optional -json serialization.
func runMVCC(w io.Writer, n int, window time.Duration, progress func(string, ...interface{})) (*MVCCReport, error) {
	rep := &MVCCReport{
		Keys:       n,
		WindowMS:   window.Milliseconds(),
		NumCPU:     runtime.NumCPU(),
		SingleCPU:  runtime.NumCPU() == 1,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
	fmt.Fprintf(w, "mvcc sweep (N=%d, window=%v, %d readers + 1 writer, NumCPU=%d)\n",
		n, window, mvccReaders, rep.NumCPU)
	if rep.SingleCPU {
		fmt.Fprintf(w, "NOTE: single-core machine — readers and writer time-slice one core,\n")
		fmt.Fprintf(w, "so cross-mode throughput ratios measure scheduling, not concurrency.\n")
	}
	fmt.Fprintf(w, "%-8s %-8s %14s %12s %14s %12s\n",
		"mode", "workload", "reader ops/s", "ns/op", "writer ops/s", "consistent")

	for _, mode := range []bmeh.WriteMode{bmeh.WriteModeLatched, bmeh.WriteModeCOW} {
		for _, workload := range []string{"get", "range"} {
			progress("mvcc: %v %s...\n", mode, workload)
			r, err := runMVCCCell(mode, workload, n, window)
			if err != nil {
				return nil, fmt.Errorf("%v/%s: %w", mode, workload, err)
			}
			rep.Results = append(rep.Results, *r)
			fmt.Fprintf(w, "%-8s %-8s %14.0f %12.0f %14.0f %12v\n",
				r.Mode, r.Workload, r.ReaderOpsPerSec, r.ReaderNsPerOp, r.WriterOpsPerSec, r.SnapshotConsistent)
		}
		// A fresh index per cell means per-mode counters must be sampled
		// from a dedicated run; reuse the get cell's shape with no window.
		ix, err := bmeh.New(bmeh.Options{Dims: 2, PageCapacity: 32, WriteMode: mode})
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			if err := ix.Insert(concKey(uint64(i)), uint64(i)); err != nil {
				ix.Close()
				return nil, err
			}
		}
		st := ix.SnapshotStats()
		rep.ModeStats = append(rep.ModeStats, MVCCModeStats{
			Mode:             mode.String(),
			Epoch:            st.Epoch,
			PinnedEpochs:     st.PinnedEpochs,
			ReclaimablePages: st.ReclaimablePages,
		})
		ix.Close()
	}
	return rep, nil
}

// runMVCCCell measures one (mode, workload) combination on a fresh
// in-memory index preloaded with n keys.
func runMVCCCell(mode bmeh.WriteMode, workload string, n int, window time.Duration) (*MVCCResult, error) {
	ix, err := bmeh.New(bmeh.Options{Dims: 2, PageCapacity: 32, CacheFrames: 8192, WriteMode: mode})
	if err != nil {
		return nil, err
	}
	defer ix.Close()
	for i := 0; i < n; i++ {
		if err := ix.Insert(concKey(uint64(i)), uint64(i)); err != nil {
			return nil, err
		}
	}

	var (
		stop       atomic.Bool
		readerOps  atomic.Uint64
		writerOps  atomic.Uint64
		consistent atomic.Bool
		errOnce    sync.Once
		runErr     error
		wg         sync.WaitGroup
	)
	consistent.Store(true)
	fail := func(err error) {
		errOnce.Do(func() { runErr = err })
		stop.Store(true)
	}

	// Saturating writer: churn the top half of the keyspace so the
	// preloaded bottom half stays resident for point readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, alive := uint64(n), false; !stop.Load(); {
			k := concKey(i)
			if alive {
				if _, err := ix.Delete(k); err != nil {
					fail(fmt.Errorf("writer delete: %w", err))
					return
				}
				i = uint64(n) + (i+1-uint64(n))%uint64(n)
			} else if err := ix.Insert(k, i); err != nil {
				fail(fmt.Errorf("writer insert: %w", err))
				return
			}
			alive = !alive
			writerOps.Add(1)
		}
	}()

	for r := 0; r < mvccReaders; r++ {
		wg.Add(1)
		go func(worker uint64) {
			defer wg.Done()
			var done uint64
			defer func() { readerOps.Add(done) }()
			for i := cmix64(worker); !stop.Load(); i++ {
				switch {
				case workload == "get":
					// Live point reads in both modes: the latched path
					// contends with the writer's latches, the COW path
					// only with its commit pointer.
					if _, _, err := ix.Get(concKey(cmix64(i) % uint64(n))); err != nil {
						fail(fmt.Errorf("reader get: %w", err))
						return
					}
				case mode == bmeh.WriteModeCOW:
					snap, err := ix.Snapshot()
					if err != nil {
						fail(fmt.Errorf("reader snapshot: %w", err))
						return
					}
					if i%64 == 0 {
						// Consistency probe: a full-box scan of the pinned
						// epoch must see exactly Len-at-pin records.
						want, got := snap.Len(), 0
						err = snap.Range(bmeh.Key{0, 0}, bmeh.Key{math.MaxUint32, math.MaxUint32},
							func(bmeh.Key, uint64) bool { got++; return true })
						if err == nil && got != want {
							consistent.Store(false)
						}
					} else {
						lo, hi := mvccBox(i, 0.005)
						err = snap.Range(lo, hi, func(bmeh.Key, uint64) bool { return true })
					}
					snap.Close()
					if err != nil {
						fail(fmt.Errorf("reader snapshot range: %w", err))
						return
					}
				default:
					lo, hi := mvccBox(i, 0.005)
					if err := ix.Range(lo, hi, func(bmeh.Key, uint64) bool { return true }); err != nil {
						fail(fmt.Errorf("reader range: %w", err))
						return
					}
				}
				done++
			}
		}(uint64(r))
	}

	time.Sleep(window)
	stop.Store(true)
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	secs := window.Seconds()
	res := &MVCCResult{
		Mode:            mode.String(),
		Workload:        workload,
		Readers:         mvccReaders,
		ReaderOps:       readerOps.Load(),
		ReaderOpsPerSec: float64(readerOps.Load()) / secs,
		WriterOpsPerSec: float64(writerOps.Load()) / secs,
	}
	if res.ReaderOps > 0 {
		res.ReaderNsPerOp = secs * 1e9 / float64(res.ReaderOps)
	}
	if mode == bmeh.WriteModeCOW && workload == "range" {
		res.SnapshotConsistent = consistent.Load()
	}
	// Leak check: with every snapshot closed and the writer stopped, no
	// epoch may stay pinned and nothing may be left unreclaimed.
	if st := ix.SnapshotStats(); st.PinnedEpochs != 0 || st.ReclaimablePages != 0 {
		return nil, fmt.Errorf("after run: %d pinned epochs, %d reclaimable pages (leak)",
			st.PinnedEpochs, st.ReclaimablePages)
	}
	return res, nil
}

func writeMVCCJSON(path string, rep *MVCCReport) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
