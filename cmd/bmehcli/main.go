// Command bmehcli is a small interactive shell over a bmeh index. It
// operates on a file-backed BMEH-tree index (created on demand) or, with
// -mem, on a transient in-memory index of any scheme.
//
// Usage:
//
//	bmehcli -dims 2 index.bmeh
//	bmehcli -mem -dims 3 -scheme mdeh
//	bmehcli fsck index.bmeh
//	bmehcli stats host:7707
//
// The fsck form runs an offline integrity check — page checksums, header,
// structural invariants — and exits 0 (clean) or 1 (problems found)
// instead of starting the shell.
//
// The stats form asks a running bmehserve node for its STATS over the
// wire and prints them, including the node's role, replication position
// and — on a clustered node — its shard identity: shard ID, owned
// pseudo-key prefix range and shard-map epoch.
//
// Commands (keys are space-separated unsigned components):
//
//	insert <k1> ... <kd> <value>
//	get    <k1> ... <kd>
//	del    <k1> ... <kd>
//	range  <lo1> ... <lod> <hi1> ... <hid>
//	count  <lo1> ... <lod> <hi1> ... <hid>
//	stats | dump | validate | help | quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"bmeh"
	"bmeh/client"
	"bmeh/internal/wire"
)

func main() {
	var (
		dims     = flag.Int("dims", 2, "key dimensionality for a new index")
		capacity = flag.Int("b", 32, "data page capacity for a new index")
		mem      = flag.Bool("mem", false, "use a transient in-memory index")
		scheme   = flag.String("scheme", "bmeh", "scheme for a new index: bmeh, mdeh or meh")
	)
	flag.Parse()

	if flag.Arg(0) == "fsck" {
		os.Exit(runFsck(flag.Arg(1)))
	}
	if flag.Arg(0) == "stats" {
		os.Exit(runRemoteStats(flag.Arg(1)))
	}

	ix, err := openIndex(*mem, *scheme, *dims, *capacity, flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bmehcli:", err)
		os.Exit(1)
	}
	defer ix.Close()

	d := *dims
	in := bufio.NewScanner(os.Stdin)
	fmt.Println("bmeh shell — type 'help' for commands")
	for {
		fmt.Print("> ")
		if !in.Scan() {
			break
		}
		fields := strings.Fields(in.Text())
		if len(fields) == 0 {
			continue
		}
		cmd, args := fields[0], fields[1:]
		switch cmd {
		case "quit", "exit", "q":
			return
		case "help":
			fmt.Println("insert k1..kd value | get k1..kd | del k1..kd |")
			fmt.Println("range lo1..lod hi1..hid | count lo1..lod hi1..hid |")
			fmt.Println("stats | dump | validate | quit")
		case "insert":
			k, rest, err := parseKey(args, d)
			if err != nil || len(rest) != 1 {
				fmt.Println("usage: insert k1..kd value")
				continue
			}
			v, err := strconv.ParseUint(rest[0], 10, 64)
			if err != nil {
				fmt.Println("bad value:", rest[0])
				continue
			}
			switch err := ix.Insert(k, v); err {
			case nil:
				fmt.Println("ok")
			case bmeh.ErrDuplicate:
				fmt.Println("duplicate key")
			default:
				fmt.Println("error:", err)
			}
		case "get":
			k, _, err := parseKey(args, d)
			if err != nil {
				fmt.Println("usage: get k1..kd")
				continue
			}
			v, ok, err := ix.Get(k)
			switch {
			case err != nil:
				fmt.Println("error:", err)
			case ok:
				fmt.Println(v)
			default:
				fmt.Println("not found")
			}
		case "del":
			k, _, err := parseKey(args, d)
			if err != nil {
				fmt.Println("usage: del k1..kd")
				continue
			}
			ok, err := ix.Delete(k)
			switch {
			case err != nil:
				fmt.Println("error:", err)
			case ok:
				fmt.Println("deleted")
			default:
				fmt.Println("not found")
			}
		case "range", "count":
			lo, rest, err := parseKey(args, d)
			if err != nil {
				fmt.Printf("usage: %s lo1..lod hi1..hid\n", cmd)
				continue
			}
			hi, _, err2 := parseKey(rest, d)
			if err2 != nil {
				fmt.Printf("usage: %s lo1..lod hi1..hid\n", cmd)
				continue
			}
			n := 0
			err = ix.Range(lo, hi, func(k bmeh.Key, v uint64) bool {
				n++
				if cmd == "range" {
					fmt.Printf("%v = %d\n", []uint64(k), v)
				}
				return true
			})
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("%d record(s)\n", n)
		case "stats":
			st := ix.Stats()
			fmt.Printf("records=%d σ=%d levels=%d dataPages=%d dirPages=%d α=%.3f reads=%d writes=%d\n",
				st.Records, st.DirectoryElements, st.DirectoryLevels,
				st.DataPages, st.DirectoryPages, st.LoadFactor, st.Reads, st.Writes)
		case "dump":
			if err := ix.Dump(os.Stdout); err != nil {
				fmt.Println("error:", err)
			}
		case "validate":
			if err := ix.Validate(); err != nil {
				fmt.Println("INTEGRITY FAILURE:", err)
			} else {
				fmt.Println("ok")
			}
		default:
			fmt.Println("unknown command; type 'help'")
		}
	}
}

// runFsck checks an index file offline and prints the findings, returning
// the process exit code: 0 clean, 1 problems found, 2 usage/IO error.
func runFsck(path string) int {
	if path == "" {
		fmt.Fprintln(os.Stderr, "usage: bmehcli fsck <index-file>")
		return 2
	}
	rep, err := bmeh.Fsck(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bmehcli: fsck:", err)
		return 2
	}
	if rep.Scheme != "" {
		fmt.Printf("%s: %s, %d page(s) (%d free) of %d bytes, %d record(s)\n",
			rep.Path, rep.Scheme, rep.Pages, rep.FreePages, rep.PageSize, rep.Records)
	}
	if rep.WALBatches > 0 || rep.WALTailBytes > 0 {
		fmt.Printf("wal: %d committed batch(es), %d frame(s), %d torn tail byte(s)\n",
			rep.WALBatches, rep.WALFrames, rep.WALTailBytes)
	}
	if rep.OK() {
		fmt.Println("ok")
		return 0
	}
	for _, p := range rep.Problems {
		fmt.Println("PROBLEM:", p)
	}
	return 1
}

// runRemoteStats dials a bmehserve node and prints its STATS, shard
// identity included. Exit code: 0 ok, 2 usage/connect error.
func runRemoteStats(addr string) int {
	if addr == "" {
		fmt.Fprintln(os.Stderr, "usage: bmehcli stats <host:port>")
		return 2
	}
	cl, err := client.Dial(addr, client.Options{PoolSize: 1, RequestTimeout: 10 * time.Second})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bmehcli: stats:", err)
		return 2
	}
	defer cl.Close()
	st, err := cl.Stats()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bmehcli: stats:", err)
		return 2
	}
	role := "primary"
	if st.Role == wire.RoleReplica {
		role = "replica"
	}
	fmt.Printf("%s: %s, records=%d dims=%d width=%d levels=%d dataPages=%d dirPages=%d α=%.3f\n",
		addr, role, st.Records, st.Dims, st.Width, st.DirectoryLevels,
		st.DataPages, st.DirectoryPages, st.LoadFactor)
	fmt.Printf("repl: commitSeq=%d primarySeq=%d subscribers=%d\n",
		st.CommitSeq, st.PrimarySeq, st.Replicas)
	if st.COW {
		fmt.Printf("cow: epoch=%d pinnedEpochs=%d reclaimablePages=%d\n",
			st.Epoch, st.PinnedEpochs, st.ReclaimablePages)
	}
	if st.Clustered {
		hi := "2^64"
		if st.ShardHi != 0 {
			hi = fmt.Sprintf("%#016x", st.ShardHi)
		}
		fmt.Printf("shard: id=%d range=[%#016x, %s) mapEpoch=%d\n",
			st.ShardID, st.ShardLo, hi, st.ShardMapEpoch)
	} else {
		fmt.Println("shard: unclustered (no shard map installed)")
	}
	return 0
}

func openIndex(mem bool, scheme string, dims, capacity int, path string) (*bmeh.Index, error) {
	if mem {
		var s bmeh.Scheme
		switch scheme {
		case "bmeh":
			s = bmeh.SchemeBMEH
		case "mdeh":
			s = bmeh.SchemeMDEH
		case "meh":
			s = bmeh.SchemeMEH
		default:
			return nil, fmt.Errorf("unknown scheme %q", scheme)
		}
		return bmeh.New(bmeh.Options{Scheme: s, Dims: dims, PageCapacity: capacity})
	}
	if path == "" {
		return nil, fmt.Errorf("an index file path is required (or pass -mem)")
	}
	if _, err := os.Stat(path); err == nil {
		return bmeh.Open(path, 256)
	}
	var s bmeh.Scheme
	switch scheme {
	case "bmeh":
		s = bmeh.SchemeBMEH
	case "mdeh":
		s = bmeh.SchemeMDEH
	case "meh":
		s = bmeh.SchemeMEH
	default:
		return nil, fmt.Errorf("unknown scheme %q", scheme)
	}
	return bmeh.Create(path, bmeh.Options{Scheme: s, Dims: dims, PageCapacity: capacity, CacheFrames: 256})
}

func parseKey(args []string, d int) (bmeh.Key, []string, error) {
	if len(args) < d {
		return nil, nil, fmt.Errorf("need %d components", d)
	}
	k := make(bmeh.Key, d)
	for j := 0; j < d; j++ {
		v, err := strconv.ParseUint(args[j], 10, 64)
		if err != nil {
			return nil, nil, err
		}
		k[j] = v
	}
	return k, args[d:], nil
}
