// Command bmehload bulk-loads CSV data into a file-backed BMEH-tree index.
// Each indexed row's value is its 0-based record number in the input, so
// the index works as a row locator for the original file.
//
// Column specifications select and encode the key dimensions:
//
//	u32:IDX           unsigned integer column IDX (must fit 32 bits)
//	i32:IDX           signed integer column
//	f64:IDX:LO:HI     real-valued column rescaled from [LO,HI] onto the
//	                  full component range (recommended for any bounded
//	                  attribute — see the README on scaling)
//	str:IDX           leading 4 bytes of a string column
//
// Usage:
//
//	bmehload -col f64:1:-180:180 -col f64:2:-90:90 -o cities.bmeh cities.csv
//	cat data.csv | bmehload -col u32:0 -col i32:3 -o out.bmeh
package main

import (
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"bmeh"
)

// colSpec is one parsed -col argument.
type colSpec struct {
	kind   string // u32, i32, f64, str
	index  int
	lo, hi float64 // f64 only
}

// parseColSpec parses a -col argument.
func parseColSpec(s string) (colSpec, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 {
		return colSpec{}, fmt.Errorf("column spec %q: want TYPE:INDEX[:LO:HI]", s)
	}
	idx, err := strconv.Atoi(parts[1])
	if err != nil || idx < 0 {
		return colSpec{}, fmt.Errorf("column spec %q: bad index %q", s, parts[1])
	}
	c := colSpec{kind: parts[0], index: idx}
	switch c.kind {
	case "u32", "i32", "str":
		if len(parts) != 2 {
			return colSpec{}, fmt.Errorf("column spec %q: %s takes no bounds", s, c.kind)
		}
	case "f64":
		if len(parts) != 4 {
			return colSpec{}, fmt.Errorf("column spec %q: f64 needs :LO:HI bounds", s)
		}
		if c.lo, err = strconv.ParseFloat(parts[2], 64); err != nil {
			return colSpec{}, fmt.Errorf("column spec %q: bad low bound", s)
		}
		if c.hi, err = strconv.ParseFloat(parts[3], 64); err != nil {
			return colSpec{}, fmt.Errorf("column spec %q: bad high bound", s)
		}
		if c.hi <= c.lo {
			return colSpec{}, fmt.Errorf("column spec %q: empty bounds", s)
		}
	default:
		return colSpec{}, fmt.Errorf("column spec %q: unknown type %q", s, c.kind)
	}
	return c, nil
}

// encode maps one CSV field to a key component.
func (c colSpec) encode(field string) (uint64, error) {
	field = strings.TrimSpace(field)
	switch c.kind {
	case "u32":
		v, err := strconv.ParseUint(field, 10, 32)
		if err != nil {
			return 0, fmt.Errorf("column %d: %q is not a uint32", c.index, field)
		}
		return bmeh.Uint32(uint32(v)), nil
	case "i32":
		v, err := strconv.ParseInt(field, 10, 32)
		if err != nil {
			return 0, fmt.Errorf("column %d: %q is not an int32", c.index, field)
		}
		return bmeh.Int32(int32(v)), nil
	case "f64":
		v, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return 0, fmt.Errorf("column %d: %q is not a number", c.index, field)
		}
		return bmeh.Bounded(v, c.lo, c.hi), nil
	case "str":
		return bmeh.StringPrefix(field, 32), nil
	}
	return 0, fmt.Errorf("unknown column type %q", c.kind)
}

// colSpecs collects repeated -col flags.
type colSpecs []colSpec

func (cs *colSpecs) String() string { return fmt.Sprint(*cs) }

func (cs *colSpecs) Set(s string) error {
	c, err := parseColSpec(s)
	if err != nil {
		return err
	}
	*cs = append(*cs, c)
	return nil
}

// errStopped reports a load cut short by a stop request. The rows
// batched so far are flushed before loadCSV returns it, so the index is
// consistent — just partial.
var errStopped = errors.New("load interrupted")

// countingReader counts source bytes as they are consumed, for the
// bytes/sec figure in the completion report.
type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// encodeRow maps one CSV record to a key, reporting malformed rows to
// errw. ok is false when the row must be skipped.
func encodeRow(cols []colSpec, rec []string, row int, errw io.Writer) (bmeh.Key, bool) {
	key := make(bmeh.Key, len(cols))
	for j, c := range cols {
		if c.index >= len(rec) {
			fmt.Fprintf(errw, "row %d: only %d fields (need column %d); skipped\n", row, len(rec), c.index)
			return nil, false
		}
		v, err := c.encode(rec[c.index])
		if err != nil {
			fmt.Fprintf(errw, "row %d: %v; skipped\n", row, err)
			return nil, false
		}
		key[j] = v
	}
	return key, true
}

// loadCSV streams rows from r into ix in batches of batchSize (1 falls
// back to per-row Insert); returns rows indexed, duplicates skipped and
// malformed rows skipped. Batches go through InsertBatch: one write lock
// and one group-committed Sync per batch instead of per row. If stop is
// closed mid-load the current batch is flushed and errStopped returned.
func loadCSV(ix *bmeh.Index, r io.Reader, cols []colSpec, header bool, batchSize int, errw io.Writer, stop <-chan struct{}) (loaded, dups, bad int, err error) {
	if batchSize < 1 {
		batchSize = 1
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	row := -1
	batch := make([]bmeh.KV, 0, batchSize)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		n, err := ix.InsertBatch(batch)
		loaded += n
		dups += len(batch) - n
		batch = batch[:0]
		return err
	}
	for {
		select {
		case <-stop:
			if err := flush(); err != nil {
				return loaded, dups, bad, err
			}
			return loaded, dups, bad, errStopped
		default:
		}
		rec, err := cr.Read()
		if err == io.EOF {
			return loaded, dups, bad, flush()
		}
		if err != nil {
			return loaded, dups, bad, err
		}
		row++
		if header && row == 0 {
			continue
		}
		key, ok := encodeRow(cols, rec, row, errw)
		if !ok {
			bad++
			continue
		}
		batch = append(batch, bmeh.KV{Key: key, Value: uint64(row)})
		if len(batch) >= batchSize {
			if err := flush(); err != nil {
				return loaded, dups, bad, fmt.Errorf("row %d: %w", row, err)
			}
		}
	}
}

// loadBulk streams rows through Index.BulkLoad: sort by pseudo-key,
// carve pages, build the directory bottom-up, one commit. If stop is
// closed mid-stream the iterator simply ends early — the rows already
// read commit as a partial (but fully consistent) load.
func loadBulk(ix *bmeh.Index, r io.Reader, cols []colSpec, header bool, errw io.Writer, stop <-chan struct{}) (loaded, dups, bad int, err error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	row := -1
	stopped := false
	st, lerr := ix.BulkLoad(func() (bmeh.KV, bool, error) {
		for {
			select {
			case <-stop:
				stopped = true
				return bmeh.KV{}, false, nil
			default:
			}
			rec, err := cr.Read()
			if err == io.EOF {
				return bmeh.KV{}, false, nil
			}
			if err != nil {
				return bmeh.KV{}, false, err
			}
			row++
			if header && row == 0 {
				continue
			}
			key, ok := encodeRow(cols, rec, row, errw)
			if !ok {
				bad++
				continue
			}
			return bmeh.KV{Key: key, Value: uint64(row)}, true, nil
		}
	}, bmeh.BulkOptions{})
	loaded, dups = int(st.Loaded), int(st.Duplicates)
	if lerr != nil {
		return loaded, dups, bad, lerr
	}
	if stopped {
		return loaded, dups, bad, errStopped
	}
	return loaded, dups, bad, nil
}

// fmtBytes renders a byte count with a binary-prefix unit.
func fmtBytes(n float64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", n/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", n/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", n/(1<<10))
	}
	return fmt.Sprintf("%.0f B", n)
}

func main() {
	var cols colSpecs
	var (
		out      = flag.String("o", "", "output index file (required)")
		capacity = flag.Int("b", 32, "data page capacity")
		header   = flag.Bool("header", true, "skip the first CSV row")
		cacheN   = flag.Int("cache", 1024, "page cache frames")
		batchN   = flag.Int("batch", 1024, "rows per InsertBatch (1 = per-row inserts)")
		bulk     = flag.Bool("bulk", false, "build bottom-up with BulkLoad (sort, carve pages, one commit)")
		backend  = flag.String("backend", "file", "storage engine: file (pread) or mmap (zero-copy reads; ignores -cache)")
	)
	flag.Var(&cols, "col", "key column spec TYPE:INDEX[:LO:HI] (repeatable, in dimension order)")
	flag.Parse()
	if *out == "" || len(cols) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	in := io.Reader(os.Stdin)
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		fail(fmt.Errorf("at most one input file"))
	}
	var be bmeh.Backend
	switch *backend {
	case "", "file":
		be = bmeh.BackendFile
	case "mmap":
		be = bmeh.BackendMmap
	default:
		fail(fmt.Errorf("unknown backend %q (want file or mmap)", *backend))
	}
	ix, err := bmeh.Create(*out, bmeh.Options{
		Dims:         len(cols),
		PageCapacity: *capacity,
		CacheFrames:  *cacheN,
		Backend:      be,
	})
	if err != nil {
		fail(err)
	}
	// SIGINT/SIGTERM stop the load at the next row boundary; what is in
	// hand is flushed (batch mode) or committed as read so far (bulk
	// mode) and the index closed cleanly, so the partial file opens
	// without WAL replay.
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sigc
		fmt.Fprintf(os.Stderr, "bmehload: %v: flushing and closing %s\n", s, *out)
		close(stop)
		signal.Stop(sigc) // a second signal kills us the default way
	}()
	src := &countingReader{r: in}
	start := time.Now()
	var loaded, dups, bad int
	if *bulk {
		loaded, dups, bad, err = loadBulk(ix, src, cols, *header, os.Stderr, stop)
	} else {
		loaded, dups, bad, err = loadCSV(ix, src, cols, *header, *batchN, os.Stderr, stop)
	}
	stopped := errors.Is(err, errStopped)
	if err != nil && !stopped {
		ix.Close()
		fail(err)
	}
	if err := ix.Close(); err != nil {
		fail(err)
	}
	elapsed := time.Since(start)
	secs := elapsed.Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	st, _ := os.Stat(*out)
	note := ""
	if stopped {
		note = " [interrupted: partial load]"
	}
	fmt.Printf("indexed %d rows (%d duplicates, %d malformed) in %v → %s (%d KiB)%s\n",
		loaded, dups, bad, elapsed.Round(time.Millisecond), *out, st.Size()/1024, note)
	fmt.Printf("rate: %.0f rows/s, %s/s (%s read)\n",
		float64(loaded)/secs, fmtBytes(float64(src.n)/secs), fmtBytes(float64(src.n)))
	if stopped {
		os.Exit(130)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bmehload:", err)
	os.Exit(1)
}
