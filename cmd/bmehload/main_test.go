package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"bmeh"
)

func TestParseColSpec(t *testing.T) {
	good := map[string]colSpec{
		"u32:0":          {kind: "u32", index: 0},
		"i32:3":          {kind: "i32", index: 3},
		"f64:1:-180:180": {kind: "f64", index: 1, lo: -180, hi: 180},
		"str:2":          {kind: "str", index: 2},
	}
	for s, want := range good {
		got, err := parseColSpec(s)
		if err != nil {
			t.Errorf("%q: %v", s, err)
			continue
		}
		if got != want {
			t.Errorf("%q: got %+v, want %+v", s, got, want)
		}
	}
	bad := []string{"", "u32", "u32:x", "u32:-1", "f64:1", "f64:1:5:1", "f64:1:a:b", "u32:0:1:2", "zzz:0"}
	for _, s := range bad {
		if _, err := parseColSpec(s); err == nil {
			t.Errorf("%q accepted", s)
		}
	}
}

func TestEncodeField(t *testing.T) {
	if v, err := (colSpec{kind: "u32", index: 0}).encode(" 42 "); err != nil || v != 42 {
		t.Errorf("u32 encode: %d %v", v, err)
	}
	if _, err := (colSpec{kind: "u32", index: 0}).encode("-1"); err == nil {
		t.Error("u32 accepted negative")
	}
	lo, _ := (colSpec{kind: "f64", index: 0, lo: 0, hi: 10}).encode("0")
	hi, _ := (colSpec{kind: "f64", index: 0, lo: 0, hi: 10}).encode("10")
	mid, _ := (colSpec{kind: "f64", index: 0, lo: 0, hi: 10}).encode("5")
	if !(lo < mid && mid < hi) {
		t.Errorf("f64 encode not monotone: %d %d %d", lo, mid, hi)
	}
	a, _ := (colSpec{kind: "str", index: 0}).encode("apple")
	b, _ := (colSpec{kind: "str", index: 0}).encode("banana")
	if a >= b {
		t.Error("str encode not order preserving")
	}
	if v, err := (colSpec{kind: "i32", index: 0}).encode("-7"); err != nil || v >= bmeh.Int32(0) {
		t.Errorf("i32 encode: %d %v", v, err)
	}
}

func TestLoadCSVEndToEnd(t *testing.T) {
	csvData := `name,lon,lat,pop
London,-0.13,51.51,9540
Paris,2.35,48.86,11100
Tokyo,139.69,35.69,37400
broken,not-a-number,1,2
Paris,2.35,48.86,11100
Sydney,151.21,-33.87,4990
short-row
`
	path := filepath.Join(t.TempDir(), "x.bmeh")
	ix, err := bmeh.Create(path, bmeh.Options{Dims: 2, PageCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	cols := []colSpec{
		{kind: "f64", index: 1, lo: -180, hi: 180},
		{kind: "f64", index: 2, lo: -90, hi: 90},
	}
	var errlog bytes.Buffer
	loaded, dups, bad, err := loadCSV(ix, strings.NewReader(csvData), cols, true, 3, &errlog)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 4 || dups != 1 || bad != 2 {
		t.Fatalf("loaded=%d dups=%d bad=%d, want 4/1/2 (%s)", loaded, dups, bad, errlog.String())
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := bmeh.Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	// Europe box finds London and Paris; their values are the CSV row
	// numbers (header = row 0).
	rows := map[uint64]bool{}
	err = re.Range(
		bmeh.Key{bmeh.Bounded(-11, -180, 180), bmeh.Bounded(35, -90, 90)},
		bmeh.Key{bmeh.Bounded(40, -180, 180), bmeh.Bounded(66, -90, 90)},
		func(k bmeh.Key, v uint64) bool { rows[v] = true; return true })
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || !rows[1] || !rows[2] {
		t.Fatalf("Europe box rows = %v, want {1,2}", rows)
	}
}
