package main

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"bmeh"
)

func TestParseColSpec(t *testing.T) {
	good := map[string]colSpec{
		"u32:0":          {kind: "u32", index: 0},
		"i32:3":          {kind: "i32", index: 3},
		"f64:1:-180:180": {kind: "f64", index: 1, lo: -180, hi: 180},
		"str:2":          {kind: "str", index: 2},
	}
	for s, want := range good {
		got, err := parseColSpec(s)
		if err != nil {
			t.Errorf("%q: %v", s, err)
			continue
		}
		if got != want {
			t.Errorf("%q: got %+v, want %+v", s, got, want)
		}
	}
	bad := []string{"", "u32", "u32:x", "u32:-1", "f64:1", "f64:1:5:1", "f64:1:a:b", "u32:0:1:2", "zzz:0"}
	for _, s := range bad {
		if _, err := parseColSpec(s); err == nil {
			t.Errorf("%q accepted", s)
		}
	}
}

func TestEncodeField(t *testing.T) {
	if v, err := (colSpec{kind: "u32", index: 0}).encode(" 42 "); err != nil || v != 42 {
		t.Errorf("u32 encode: %d %v", v, err)
	}
	if _, err := (colSpec{kind: "u32", index: 0}).encode("-1"); err == nil {
		t.Error("u32 accepted negative")
	}
	lo, _ := (colSpec{kind: "f64", index: 0, lo: 0, hi: 10}).encode("0")
	hi, _ := (colSpec{kind: "f64", index: 0, lo: 0, hi: 10}).encode("10")
	mid, _ := (colSpec{kind: "f64", index: 0, lo: 0, hi: 10}).encode("5")
	if !(lo < mid && mid < hi) {
		t.Errorf("f64 encode not monotone: %d %d %d", lo, mid, hi)
	}
	a, _ := (colSpec{kind: "str", index: 0}).encode("apple")
	b, _ := (colSpec{kind: "str", index: 0}).encode("banana")
	if a >= b {
		t.Error("str encode not order preserving")
	}
	if v, err := (colSpec{kind: "i32", index: 0}).encode("-7"); err != nil || v >= bmeh.Int32(0) {
		t.Errorf("i32 encode: %d %v", v, err)
	}
}

func TestLoadCSVEndToEnd(t *testing.T) {
	csvData := `name,lon,lat,pop
London,-0.13,51.51,9540
Paris,2.35,48.86,11100
Tokyo,139.69,35.69,37400
broken,not-a-number,1,2
Paris,2.35,48.86,11100
Sydney,151.21,-33.87,4990
short-row
`
	path := filepath.Join(t.TempDir(), "x.bmeh")
	ix, err := bmeh.Create(path, bmeh.Options{Dims: 2, PageCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	cols := []colSpec{
		{kind: "f64", index: 1, lo: -180, hi: 180},
		{kind: "f64", index: 2, lo: -90, hi: 90},
	}
	var errlog bytes.Buffer
	loaded, dups, bad, err := loadCSV(ix, strings.NewReader(csvData), cols, true, 3, &errlog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 4 || dups != 1 || bad != 2 {
		t.Fatalf("loaded=%d dups=%d bad=%d, want 4/1/2 (%s)", loaded, dups, bad, errlog.String())
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := bmeh.Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	// Europe box finds London and Paris; their values are the CSV row
	// numbers (header = row 0).
	rows := map[uint64]bool{}
	err = re.Range(
		bmeh.Key{bmeh.Bounded(-11, -180, 180), bmeh.Bounded(35, -90, 90)},
		bmeh.Key{bmeh.Bounded(40, -180, 180), bmeh.Bounded(66, -90, 90)},
		func(k bmeh.Key, v uint64) bool { rows[v] = true; return true })
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || !rows[1] || !rows[2] {
		t.Fatalf("Europe box rows = %v, want {1,2}", rows)
	}
}

// TestLoadCSVStop: a stop request mid-load flushes the batch in hand,
// reports errStopped, and leaves a file that reopens with a clean
// shutdown (no WAL replay) holding exactly the flushed rows.
func TestLoadCSVStop(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("a,b\n")
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&sb, "%d,%d\n", i, i%97)
	}
	path := filepath.Join(t.TempDir(), "stop.bmeh")
	ix, err := bmeh.Create(path, bmeh.Options{Dims: 2, PageCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	cols := []colSpec{{kind: "u32", index: 0}, {kind: "u32", index: 1}}
	stop := make(chan struct{})
	close(stop) // fires on the very first row boundary
	var errlog bytes.Buffer
	loaded, _, _, err := loadCSV(ix, strings.NewReader(sb.String()), cols, true, 64, &errlog, stop)
	if !errors.Is(err, errStopped) {
		t.Fatalf("stopped load error = %v, want errStopped", err)
	}
	if loaded != 0 {
		t.Fatalf("loaded %d rows after immediate stop, want 0", loaded)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	// A stop after some batches keeps what was flushed.
	path2 := filepath.Join(t.TempDir(), "stop2.bmeh")
	ix2, err := bmeh.Create(path2, bmeh.Options{Dims: 2, PageCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	stop2 := make(chan struct{})
	var once sync.Once
	// stoppingReader closes stop2 partway through the input stream.
	r := io.Reader(&stoppingReader{r: strings.NewReader(sb.String()), after: 2000, fire: func() { once.Do(func() { close(stop2) }) }})
	loaded2, _, _, err := loadCSV(ix2, r, cols, true, 64, &errlog, stop2)
	if !errors.Is(err, errStopped) {
		t.Fatalf("stopped load error = %v, want errStopped", err)
	}
	if loaded2 == 0 || loaded2 >= 1000 {
		t.Fatalf("partial load kept %d rows, want 0 < n < 1000", loaded2)
	}
	if err := ix2.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := bmeh.Open(path2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !re.Recovery().CleanShutdown() {
		t.Fatalf("interrupted load left a dirty WAL: %+v", re.Recovery())
	}
	if got := re.Len(); got != loaded2 {
		t.Fatalf("reopened index has %d records, loader reported %d", got, loaded2)
	}
}

// stoppingReader calls fire once `after` bytes have been read through it.
type stoppingReader struct {
	r     io.Reader
	after int
	read  int
	fire  func()
}

func (s *stoppingReader) Read(p []byte) (int, error) {
	if len(p) > 512 {
		p = p[:512] // small reads so fire lands mid-stream
	}
	n, err := s.r.Read(p)
	s.read += n
	if s.read >= s.after {
		s.fire()
	}
	return n, err
}

// TestLoadBulkEndToEnd runs the same fixture through the bottom-up bulk
// path and expects identical counts and query results.
func TestLoadBulkEndToEnd(t *testing.T) {
	csvData := `name,lon,lat,pop
London,-0.13,51.51,9540
Paris,2.35,48.86,11100
Tokyo,139.69,35.69,37400
broken,not-a-number,1,2
Paris,2.35,48.86,11100
Sydney,151.21,-33.87,4990
short-row
`
	path := filepath.Join(t.TempDir(), "bulk.bmeh")
	ix, err := bmeh.Create(path, bmeh.Options{Dims: 2, PageCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	cols := []colSpec{
		{kind: "f64", index: 1, lo: -180, hi: 180},
		{kind: "f64", index: 2, lo: -90, hi: 90},
	}
	var errlog bytes.Buffer
	loaded, dups, bad, err := loadBulk(ix, strings.NewReader(csvData), cols, true, &errlog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 4 || dups != 1 || bad != 2 {
		t.Fatalf("loaded=%d dups=%d bad=%d, want 4/1/2 (%s)", loaded, dups, bad, errlog.String())
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := bmeh.Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rows := map[uint64]bool{}
	err = re.Range(
		bmeh.Key{bmeh.Bounded(-11, -180, 180), bmeh.Bounded(35, -90, 90)},
		bmeh.Key{bmeh.Bounded(40, -180, 180), bmeh.Bounded(66, -90, 90)},
		func(k bmeh.Key, v uint64) bool { rows[v] = true; return true })
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || !rows[1] || !rows[2] {
		t.Fatalf("Europe box rows = %v, want {1,2}", rows)
	}
}

// TestLoadBulkStop: stopping a bulk load commits the rows read so far as
// one consistent partial index.
func TestLoadBulkStop(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("a,b\n")
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&sb, "%d,%d\n", i, i*131)
	}
	path := filepath.Join(t.TempDir(), "bulkstop.bmeh")
	ix, err := bmeh.Create(path, bmeh.Options{Dims: 2, PageCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	cols := []colSpec{{kind: "u32", index: 0}, {kind: "u32", index: 1}}
	stop := make(chan struct{})
	var once sync.Once
	var errlog bytes.Buffer
	r := io.Reader(&stoppingReader{r: strings.NewReader(sb.String()), after: 2000, fire: func() { once.Do(func() { close(stop) }) }})
	loaded, _, _, err := loadBulk(ix, r, cols, true, &errlog, stop)
	if !errors.Is(err, errStopped) {
		t.Fatalf("stopped bulk load error = %v, want errStopped", err)
	}
	if loaded == 0 || loaded >= 1000 {
		t.Fatalf("partial bulk load kept %d rows, want 0 < n < 1000", loaded)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := bmeh.Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !re.Recovery().CleanShutdown() {
		t.Fatalf("interrupted bulk load left a dirty WAL: %+v", re.Recovery())
	}
	if got := re.Len(); got != loaded {
		t.Fatalf("reopened index has %d records, loader reported %d", got, loaded)
	}
	if err := re.Validate(); err != nil {
		t.Fatal(err)
	}
}
