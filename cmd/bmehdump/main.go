// Command bmehdump inspects a BMEH-tree index file: it prints statistics,
// verifies every structural invariant, and (with -tree) renders the whole
// directory hierarchy.
//
// Usage:
//
//	bmehdump [-tree] [-validate] index.bmeh
//	bmehdump -demo          # build a small demo index and dump it
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"bmeh"
)

func main() {
	var (
		tree     = flag.Bool("tree", false, "render the full directory hierarchy")
		validate = flag.Bool("validate", true, "check structural invariants")
		demo     = flag.Bool("demo", false, "build an in-memory demo index instead of opening a file")
	)
	flag.Parse()

	var (
		ix  *bmeh.Index
		err error
	)
	switch {
	case *demo:
		ix, err = demoIndex()
	case flag.NArg() == 1:
		ix, err = bmeh.Open(flag.Arg(0), 0)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fail(err)
	}
	defer ix.Close()

	st := ix.Stats()
	fmt.Printf("records:            %d\n", st.Records)
	fmt.Printf("directory elements: %d (σ)\n", st.DirectoryElements)
	fmt.Printf("directory levels:   %d\n", st.DirectoryLevels)
	fmt.Printf("directory pages:    %d\n", st.DirectoryPages)
	fmt.Printf("data pages:         %d\n", st.DataPages)
	fmt.Printf("load factor:        %.3f (α)\n", st.LoadFactor)

	if *validate {
		if err := ix.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "INTEGRITY FAILURE:", err)
			os.Exit(1)
		}
		fmt.Println("integrity:          ok")
	}
	if *tree {
		fmt.Println()
		if err := ix.Dump(os.Stdout); err != nil {
			fail(err)
		}
	}
}

func demoIndex() (*bmeh.Index, error) {
	ix, err := bmeh.New(bmeh.Options{Dims: 2, PageCapacity: 4, NodeBits: []int{2, 2}})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		k := bmeh.Key{uint64(rng.Int63n(1 << 31)), uint64(rng.Int63n(1 << 31))}
		if err := ix.Insert(k, uint64(i)); err != nil && err != bmeh.ErrDuplicate {
			return nil, err
		}
	}
	return ix, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bmehdump:", err)
	os.Exit(1)
}
