// Command bmehserve exposes a BMEH-tree index over the binary wire
// protocol (package bmeh/internal/wire). It serves either a file-backed
// index (-index, crash-consistent via the write-ahead log) or an
// in-memory one (-mem, for benchmarking and tests).
//
// SIGINT or SIGTERM starts a graceful drain: the listener closes, every
// request already received is answered, the coalescer flushes, and the
// index Syncs — so the next open replays nothing from the WAL and
// reports a clean shutdown. A second signal aborts the drain.
//
// A file-backed server is a replication primary: replicas subscribe
// over the same port and receive every committed batch. Started with
// -replica-of, the process is instead a read replica: it follows the
// given primary (seeding itself with a snapshot when its local file
// does not exist yet), serves reads, and refuses writes.
//
// The process logic lives in bmeh/internal/serve so the cluster
// launcher (cmd/bmehcluster) and tests can run the identical server
// in-process; this file only parses flags.
//
// Usage:
//
//	bmehserve -index cities.bmeh -addr :7707
//	bmehserve -mem -dims 3 -addr 127.0.0.1:0
//	bmehserve -index replica.bmeh -replica-of primary:7707 -addr :7708
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bmeh/internal/serve"
)

func main() {
	var cfg serve.Config
	flag.StringVar(&cfg.Addr, "addr", ":7707", "listen address")
	flag.StringVar(&cfg.IndexPath, "index", "", "file-backed index to serve")
	flag.BoolVar(&cfg.Create, "create", false, "create -index if it does not exist")
	flag.BoolVar(&cfg.Mem, "mem", false, "serve a fresh in-memory index instead of a file")
	flag.IntVar(&cfg.Dims, "dims", 2, "key dimensions (new indexes only)")
	flag.IntVar(&cfg.Capacity, "b", 32, "data page capacity (new indexes only)")
	flag.IntVar(&cfg.Cache, "cache", 4096, "page cache frames (ignored by -backend mmap)")
	flag.StringVar(&cfg.Backend, "backend", "file", "storage engine: file (pread) or mmap (zero-copy reads)")
	flag.DurationVar(&cfg.SyncInterval, "sync-interval", 200*time.Microsecond, "group-commit window (0 = commit-in-flight coalescing only)")
	flag.IntVar(&cfg.SyncBatch, "sync-batch", 64, "group-commit max batch (0 = unbounded)")
	flag.IntVar(&cfg.CoalesceMax, "coalesce-max", 0, "max PUTs folded into one InsertBatch (0 = server default)")
	flag.DurationVar(&cfg.CoalesceWait, "coalesce-wait", 0, "how long to hold a non-full PUT batch open (0 = don't wait)")
	flag.DurationVar(&cfg.DrainTimeout, "drain-timeout", 30*time.Second, "graceful shutdown budget")
	flag.StringVar(&cfg.ReplicaOf, "replica-of", "", "follow this primary (host:port) as a read replica")
	flag.BoolVar(&cfg.COW, "cow", false, "copy-on-write writes: RANGE reads run against MVCC snapshots")
	flag.DurationVar(&cfg.SnapMaxPinAge, "snap-max-pin-age", 0, "force-release snapshot pins older than this (-cow only; 0 = never)")
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	if err := serve.Run(cfg, sig, nil, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "bmehserve:", err)
		os.Exit(1)
	}
}
