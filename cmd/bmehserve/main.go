// Command bmehserve exposes a BMEH-tree index over the binary wire
// protocol (package bmeh/internal/wire). It serves either a file-backed
// index (-index, crash-consistent via the write-ahead log) or an
// in-memory one (-mem, for benchmarking and tests).
//
// SIGINT or SIGTERM starts a graceful drain: the listener closes, every
// request already received is answered, the coalescer flushes, and the
// index Syncs — so the next open replays nothing from the WAL and
// reports a clean shutdown. A second signal aborts the drain.
//
// A file-backed server is a replication primary: replicas subscribe
// over the same port and receive every committed batch. Started with
// -replica-of, the process is instead a read replica: it follows the
// given primary (seeding itself with a snapshot when its local file
// does not exist yet), serves reads, and refuses writes.
//
// Usage:
//
//	bmehserve -index cities.bmeh -addr :7707
//	bmehserve -mem -dims 3 -addr 127.0.0.1:0
//	bmehserve -index replica.bmeh -replica-of primary:7707 -addr :7708
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bmeh"
	"bmeh/internal/repl"
	"bmeh/internal/server"
)

// serveConfig carries everything main parses from flags, so runServer is
// testable without a process boundary.
type serveConfig struct {
	addr         string
	indexPath    string // file-backed store; "" means in-memory
	create       bool   // create indexPath if absent
	mem          bool
	dims         int // new indexes only
	capacity     int // new indexes only
	cache        int
	backend      string // storage engine: "file" (pread) or "mmap"
	syncInterval time.Duration
	syncBatch    int
	coalesceMax  int
	coalesceWait time.Duration
	drainTimeout time.Duration
	replicaOf    string // primary address; "" means this node is a primary
	cow          bool   // copy-on-write writers + MVCC snapshot reads
}

// parseBackend maps the -backend flag to a storage engine.
func parseBackend(s string) (bmeh.Backend, error) {
	switch s {
	case "", "file":
		return bmeh.BackendFile, nil
	case "mmap":
		return bmeh.BackendMmap, nil
	default:
		return 0, fmt.Errorf("unknown backend %q (want file or mmap)", s)
	}
}

// runServer opens/creates the index, serves cfg.addr until a value
// arrives on sig, then drains and closes. ready (optional) is called
// with the bound address once the listener is up — tests use it to learn
// the port and to coordinate shutdown.
func runServer(cfg serveConfig, sig <-chan os.Signal, ready func(net.Addr), logw io.Writer) error {
	if cfg.replicaOf != "" {
		return runReplica(cfg, sig, ready, logw)
	}
	opts := bmeh.Options{
		Dims:         cfg.dims,
		PageCapacity: cfg.capacity,
		CacheFrames:  cfg.cache,
		SyncPolicy:   bmeh.SyncPolicy{Interval: cfg.syncInterval, MaxBatch: cfg.syncBatch},
	}
	backend, err := parseBackend(cfg.backend)
	if err != nil {
		return err
	}
	opts.Backend = backend
	if cfg.cow {
		opts.WriteMode = bmeh.WriteModeCOW
	}
	var ix *bmeh.Index
	switch {
	case cfg.mem:
		ix, err = bmeh.New(opts)
	case cfg.indexPath == "":
		return errors.New("either -index or -mem is required")
	default:
		ix, err = bmeh.OpenWithOptions(cfg.indexPath, opts)
		if cfg.create && errors.Is(err, os.ErrNotExist) {
			ix, err = bmeh.Create(cfg.indexPath, opts)
		}
	}
	if err != nil {
		return err
	}
	ix.SetSyncPolicy(opts.SyncPolicy)
	defer ix.Close()
	if !cfg.mem {
		rec := ix.Recovery()
		if rec.CleanShutdown() {
			fmt.Fprintf(logw, "bmehserve: %s: clean shutdown, no WAL replay\n", cfg.indexPath)
		} else {
			fmt.Fprintf(logw, "bmehserve: %s: recovered %d WAL commit(s)\n", cfg.indexPath, rec.ReplayedCommits)
		}
	}

	// A file-backed primary publishes its commit stream so replicas can
	// subscribe; an in-memory index has no commit sequence to ship.
	var hub *repl.Hub
	if !cfg.mem {
		hub = repl.NewHub(ix, repl.HubOptions{})
		if err := ix.SetReplPublisher(hub.Publish); err != nil {
			return err
		}
		defer func() {
			ix.SetReplPublisher(nil)
			hub.Close()
		}()
	}
	srv := server.New(ix, server.Config{
		CoalesceMax:  cfg.coalesceMax,
		CoalesceWait: cfg.coalesceWait,
		Hub:          hub,
		Logf:         func(format string, args ...any) { fmt.Fprintf(logw, "bmehserve: "+format+"\n", args...) },
	})
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "bmehserve: serving %d record(s), %d dim(s) on %s\n", ix.Len(), ix.Options().Dims, ln.Addr())
	if ready != nil {
		ready(ln.Addr())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case s := <-sig:
		fmt.Fprintf(logw, "bmehserve: %v: draining (timeout %v)\n", s, cfg.drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
		defer cancel()
		go func() {
			if s, ok := <-sig; ok {
				fmt.Fprintf(logw, "bmehserve: %v: aborting drain\n", s)
				cancel()
			}
		}()
		if err := srv.Shutdown(ctx); err != nil {
			<-serveErr
			return fmt.Errorf("drain: %w", err)
		}
		if err := <-serveErr; err != nil && !errors.Is(err, server.ErrServerClosed) {
			return err
		}
		fmt.Fprintf(logw, "bmehserve: drained cleanly\n")
		return nil
	case err := <-serveErr:
		return err
	}
}

// runReplica follows a primary: seed (or reopen) the local store, apply
// the replication stream, and serve reads only. Drain order on signal:
// stop serving clients, stop the replication link, close the store —
// so the last applied batch is durable and the WAL left clean.
func runReplica(cfg serveConfig, sig <-chan os.Signal, ready func(net.Addr), logw io.Writer) error {
	if cfg.mem {
		return errors.New("-replica-of needs a file-backed store, not -mem")
	}
	if cfg.indexPath == "" {
		return errors.New("-replica-of requires -index")
	}
	target, err := bmeh.NewReplicaTarget(cfg.indexPath, cfg.cache)
	if err != nil {
		return err
	}
	defer target.Close()
	rep := repl.NewReplica(target, cfg.replicaOf, repl.ReplicaOptions{
		Logf: func(format string, args ...any) { fmt.Fprintf(logw, "bmehserve: "+format+"\n", args...) },
	})
	rep.Start()
	defer rep.Close()

	// A replica with no local file yet cannot serve until the first
	// snapshot lands; one with a file serves immediately and catches up.
	select {
	case <-target.Ready():
	case s := <-sig:
		fmt.Fprintf(logw, "bmehserve: %v before initial snapshot, exiting\n", s)
		return nil
	}
	ix := target.Index()
	fmt.Fprintf(logw, "bmehserve: replica of %s at seq %d, %d record(s)\n",
		cfg.replicaOf, ix.ReplCommitSeq(), ix.Len())

	srv := server.New(ix, server.Config{
		ReadOnly: true,
		ReplicaStatus: func() (primarySeq, appliedSeq uint64, connected bool) {
			st := rep.Status()
			return st.PrimarySeq, st.AppliedSeq, st.Connected
		},
		Logf: func(format string, args ...any) { fmt.Fprintf(logw, "bmehserve: "+format+"\n", args...) },
	})
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "bmehserve: replica serving on %s\n", ln.Addr())
	if ready != nil {
		ready(ln.Addr())
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case s := <-sig:
		fmt.Fprintf(logw, "bmehserve: %v: draining replica (timeout %v)\n", s, cfg.drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
		defer cancel()
		go func() {
			if s, ok := <-sig; ok {
				fmt.Fprintf(logw, "bmehserve: %v: aborting drain\n", s)
				cancel()
			}
		}()
		if err := srv.Shutdown(ctx); err != nil {
			<-serveErr
			return fmt.Errorf("drain: %w", err)
		}
		if err := <-serveErr; err != nil && !errors.Is(err, server.ErrServerClosed) {
			return err
		}
		fmt.Fprintf(logw, "bmehserve: replica drained cleanly\n")
		return nil
	case err := <-serveErr:
		return err
	}
}

func main() {
	var cfg serveConfig
	flag.StringVar(&cfg.addr, "addr", ":7707", "listen address")
	flag.StringVar(&cfg.indexPath, "index", "", "file-backed index to serve")
	flag.BoolVar(&cfg.create, "create", false, "create -index if it does not exist")
	flag.BoolVar(&cfg.mem, "mem", false, "serve a fresh in-memory index instead of a file")
	flag.IntVar(&cfg.dims, "dims", 2, "key dimensions (new indexes only)")
	flag.IntVar(&cfg.capacity, "b", 32, "data page capacity (new indexes only)")
	flag.IntVar(&cfg.cache, "cache", 4096, "page cache frames (ignored by -backend mmap)")
	flag.StringVar(&cfg.backend, "backend", "file", "storage engine: file (pread) or mmap (zero-copy reads)")
	flag.DurationVar(&cfg.syncInterval, "sync-interval", 200*time.Microsecond, "group-commit window (0 = commit-in-flight coalescing only)")
	flag.IntVar(&cfg.syncBatch, "sync-batch", 64, "group-commit max batch (0 = unbounded)")
	flag.IntVar(&cfg.coalesceMax, "coalesce-max", 0, "max PUTs folded into one InsertBatch (0 = server default)")
	flag.DurationVar(&cfg.coalesceWait, "coalesce-wait", 0, "how long to hold a non-full PUT batch open (0 = don't wait)")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "graceful shutdown budget")
	flag.StringVar(&cfg.replicaOf, "replica-of", "", "follow this primary (host:port) as a read replica")
	flag.BoolVar(&cfg.cow, "cow", false, "copy-on-write writes: RANGE reads run against MVCC snapshots")
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	if err := runServer(cfg, sig, nil, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "bmehserve:", err)
		os.Exit(1)
	}
}
