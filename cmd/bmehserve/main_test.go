package main

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"bmeh"
	"bmeh/client"
	"bmeh/internal/serve"
)

// startDaemon runs runServer in a goroutine and returns the bound
// address, the signal channel that stops it, and a wait func returning
// runServer's error plus everything it logged.
func startDaemon(t *testing.T, cfg serve.Config) (addr string, sig chan os.Signal, wait func() (error, string)) {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	sig = make(chan os.Signal, 2)
	addrc := make(chan net.Addr, 1)
	var (
		log  bytes.Buffer
		logm sync.Mutex
	)
	errc := make(chan error, 1)
	go func() {
		errc <- serve.Run(cfg, sig, func(a net.Addr) { addrc <- a }, syncWriter{&log, &logm})
	}()
	select {
	case a := <-addrc:
		addr = a.String()
	case err := <-errc:
		t.Fatalf("daemon exited before listening: %v\nlog: %s", err, log.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never came up")
	}
	return addr, sig, func() (error, string) {
		select {
		case err := <-errc:
			close(sig)
			logm.Lock()
			defer logm.Unlock()
			return err, log.String()
		case <-time.After(30 * time.Second):
			t.Fatal("daemon did not exit")
			return nil, ""
		}
	}
}

type syncWriter struct {
	w  *bytes.Buffer
	mu *sync.Mutex
}

func (s syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// TestDaemonRestart: run the daemon on a file-backed index, write
// through the network, SIGTERM it, restart on the same file, and verify
// the second run reports a clean shutdown (zero WAL replay) and serves
// the data back.
func TestDaemonRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "served.bmeh")
	cfg := serve.Config{
		IndexPath: path, Create: true,
		Dims: 2, Capacity: 16, Cache: 256,
		SyncInterval: 200 * time.Microsecond, SyncBatch: 64,
	}

	addr, sig, wait := startDaemon(t, cfg)
	cl, err := client.Dial(addr, client.Options{PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	kvs := make([]bmeh.KV, n)
	for i := range kvs {
		kvs[i] = bmeh.KV{Key: bmeh.Key{uint64(i), uint64(i % 37)}, Value: uint64(i * 7)}
	}
	ins, err := cl.Batch(kvs)
	if err != nil || ins != n {
		t.Fatalf("batch: inserted=%d err=%v", ins, err)
	}
	if err := cl.Sync(); err != nil {
		t.Fatal(err)
	}
	cl.Close()

	sig <- syscall.SIGTERM
	if err, log := wait(); err != nil {
		t.Fatalf("first run: %v\nlog: %s", err, log)
	}

	// Second run must see a clean WAL.
	addr2, sig2, wait2 := startDaemon(t, cfg)
	cl2, err := client.Dial(addr2, client.Options{PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, n / 2, n - 1} {
		v, ok, err := cl2.Get(bmeh.Key{uint64(i), uint64(i % 37)})
		if err != nil || !ok || v != uint64(i*7) {
			t.Fatalf("get %d after restart: %d %v %v", i, v, ok, err)
		}
	}
	st, err := cl2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != n {
		t.Fatalf("restarted daemon serves %d records, want %d", st.Records, n)
	}
	cl2.Close()
	sig2 <- syscall.SIGINT
	err2, log2 := wait2()
	if err2 != nil {
		t.Fatalf("second run: %v\nlog: %s", err2, log2)
	}
	if !strings.Contains(log2, "clean shutdown, no WAL replay") {
		t.Fatalf("second run did not report a clean shutdown:\n%s", log2)
	}
	if !strings.Contains(log2, "drained cleanly") {
		t.Fatalf("second run did not drain cleanly:\n%s", log2)
	}
}

// TestDaemonMem: the -mem mode comes up empty and serves.
func TestDaemonMem(t *testing.T) {
	addr, sig, wait := startDaemon(t, serve.Config{Mem: true, Dims: 3, Capacity: 8, Cache: 64})
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Put(bmeh.Key{1, 2, 3}, 9); err != nil {
		t.Fatal(err)
	}
	v, ok, err := cl.Get(bmeh.Key{1, 2, 3})
	if err != nil || !ok || v != 9 {
		t.Fatalf("mem get: %d %v %v", v, ok, err)
	}
	cl.Close()
	sig <- syscall.SIGTERM
	if err, log := wait(); err != nil {
		t.Fatalf("mem run: %v\nlog: %s", err, log)
	}
}

// TestDaemonBadConfig: neither -index nor -mem is an error, not a panic.
func TestDaemonBadConfig(t *testing.T) {
	sig := make(chan os.Signal, 1)
	if err := serve.Run(serve.Config{Addr: "127.0.0.1:0", Dims: 2}, sig, nil, &bytes.Buffer{}); err == nil {
		t.Fatal("config without a store accepted")
	}
}
