package main

// Process-level chaos matrix: real bmehserve processes (the test binary
// re-execs itself) joined by real TCP, with kill -9 landing mid
// group-commit. In every scenario the replica must converge to the
// primary's exact commit sequence, both stores must pass Fsck, and the
// two files must be byte-for-byte identical after clean shutdowns.

import (
	"bytes"
	"errors"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"bmeh"
	"bmeh/client"
)

func TestMain(m *testing.M) {
	// Child mode: behave as the real bmehserve binary.
	if os.Getenv("BMEHSERVE_CHILD") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// freePort grabs an ephemeral port and releases it for a child to bind.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// proc is one bmehserve child process. done is closed after Wait
// returns (exit error in err), so kill and term are safely re-entrant.
type proc struct {
	t    *testing.T
	cmd  *exec.Cmd
	log  *bytes.Buffer
	done chan struct{}
	err  error
	addr string
}

// startProc re-execs the test binary as bmehserve with the given flags
// and waits until the node answers STATS.
func startProc(t *testing.T, addr string, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(os.Args[0], append(args, "-addr", addr)...)
	cmd.Env = append(os.Environ(), "BMEHSERVE_CHILD=1")
	log := &bytes.Buffer{}
	cmd.Stdout, cmd.Stderr = log, log
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &proc{t: t, cmd: cmd, log: log, done: make(chan struct{}), addr: addr}
	go func() { p.err = cmd.Wait(); close(p.done) }()
	t.Cleanup(func() { p.kill() })

	deadline := time.Now().Add(30 * time.Second)
	for {
		cl, err := client.Dial(addr, client.Options{
			PoolSize: 1, DialTimeout: time.Second, RequestTimeout: 2 * time.Second,
		})
		if err == nil {
			_, serr := cl.Stats()
			cl.Close()
			if serr == nil {
				return p
			}
			err = serr
		}
		select {
		case <-p.done:
			t.Fatalf("child exited during startup: %v (wait: %v)\nlog: %s", err, p.err, log.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("child never became ready: %v\nlog: %s", err, log.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// kill delivers SIGKILL — no drain, no WAL reset, exactly the crash the
// recovery path exists for.
func (p *proc) kill() {
	select {
	case <-p.done:
		return // already gone
	default:
	}
	p.cmd.Process.Kill()
	<-p.done
}

// term drains the child with SIGTERM and requires a clean exit.
func (p *proc) term() {
	p.t.Helper()
	select {
	case <-p.done:
		p.t.Fatalf("child already exited\nlog: %s", p.log.String())
	default:
	}
	p.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-p.done:
		if p.err != nil {
			p.t.Fatalf("child exited uncleanly: %v\nlog: %s", p.err, p.log.String())
		}
	case <-time.After(30 * time.Second):
		p.t.Fatalf("child ignored SIGTERM\nlog: %s", p.log.String())
	}
}

// nodeSeq asks one node directly for its commit sequence.
func nodeSeq(t *testing.T, addr string) uint64 {
	t.Helper()
	cl, err := client.Dial(addr, client.Options{PoolSize: 1, RequestTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	return st.CommitSeq
}

// awaitNodeSeq polls addr until its commit sequence reaches want.
func awaitNodeSeq(t *testing.T, addr string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if got := nodeSeq(t, addr); got >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %s stuck below seq %d", addr, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// verifyFiles requires both stores Fsck-clean and byte-identical. Call
// only after both processes have exited.
func verifyFiles(t *testing.T, ppath, rpath string) {
	t.Helper()
	for _, path := range []string{ppath, rpath} {
		rep, err := bmeh.Fsck(path)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("fsck %s: %v", path, rep.Problems)
		}
	}
	pb, err := os.ReadFile(ppath)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := os.ReadFile(rpath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pb, rb) {
		t.Fatalf("stores diverged: primary %d bytes, replica %d bytes", len(pb), len(rb))
	}
}

func primaryArgs(path string) []string {
	return []string{
		"-index", path, "-create",
		"-dims", "2", "-b", "16", "-cache", "512",
		"-sync-interval", "200us", "-sync-batch", "64",
	}
}

// TestChaosKillPrimary: kill -9 the primary mid group-commit while GETs
// stream against the cluster client. Reads must see zero errors (the
// replica carries them), the restarted primary must recover and resume
// shipping, and the matrix ends with replica-then-primary shutdown.
func TestChaosKillPrimary(t *testing.T) {
	if testing.Short() {
		t.Skip("process chaos test")
	}
	dir := t.TempDir()
	ppath := filepath.Join(dir, "primary.bmeh")
	rpath := filepath.Join(dir, "replica.bmeh")
	paddr, raddr := freePort(t), freePort(t)

	primary := startProc(t, paddr, primaryArgs(ppath)...)
	replica := startProc(t, raddr, "-index", rpath, "-replica-of", paddr, "-cache", "512")

	cl, err := client.DialCluster(paddr, []string{raddr}, client.Options{
		PoolSize: 2, Retries: 5, RequestTimeout: 5 * time.Second,
		RedialBackoff: 20 * time.Millisecond, RedialBackoffMax: 200 * time.Millisecond,
		HealthInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Writers hammer so the SIGKILL lands with commits in flight; their
	// errors while the primary is dark are expected (and typed).
	var puts, putErrs atomic.Int64
	stopWrite := make(chan struct{})
	writeDone := make(chan struct{})
	go func() {
		defer close(writeDone)
		for i := 0; ; i++ {
			select {
			case <-stopWrite:
				return
			default:
			}
			if err := cl.Put(bmeh.Key{uint64(i), uint64(i % 97)}, uint64(i)); err == nil {
				puts.Add(1)
			} else {
				putErrs.Add(1)
				time.Sleep(5 * time.Millisecond)
			}
		}
	}()
	// Reads must never fail: the replica serves them across the outage.
	var gets, getErrs atomic.Int64
	var firstGetErr atomic.Value
	stopRead := make(chan struct{})
	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		for i := 0; ; i++ {
			select {
			case <-stopRead:
				return
			default:
			}
			if _, _, err := cl.Get(bmeh.Key{uint64(i % 100), uint64(i % 97)}); err != nil {
				getErrs.Add(1)
				firstGetErr.CompareAndSwap(nil, err)
			}
			gets.Add(1)
		}
	}()

	time.Sleep(500 * time.Millisecond) // steady state, commits flowing
	primary.kill()
	time.Sleep(500 * time.Millisecond) // primary dark, reads on replica
	primary = startProc(t, paddr, primaryArgs(ppath)...)
	time.Sleep(500 * time.Millisecond) // recovered primary takes writes again
	close(stopWrite)
	<-writeDone
	close(stopRead)
	<-readDone

	if gets.Load() == 0 || getErrs.Load() != 0 {
		t.Fatalf("GET availability: %d gets, %d errors (first: %v), want zero errors",
			gets.Load(), getErrs.Load(), firstGetErr.Load())
	}
	if puts.Load() == 0 {
		t.Fatal("no puts succeeded")
	}
	if putErrs.Load() == 0 {
		t.Fatal("no put failed across a kill -9: the kill missed the load window")
	}

	// Converge, then shut down replica first, primary second. The first
	// syncs may still hit the primary endpoint's redial backoff gate.
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := cl.Sync()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sync after recovery: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	awaitNodeSeq(t, raddr, nodeSeq(t, paddr))
	replica.term()
	primary.term()
	verifyFiles(t, ppath, rpath)
}

// TestChaosKillReplica: kill -9 the replica mid-stream, write on, then
// restart it — it must reopen its own file, catch back up, and converge.
// Shutdown order here is primary first, replica second.
func TestChaosKillReplica(t *testing.T) {
	if testing.Short() {
		t.Skip("process chaos test")
	}
	dir := t.TempDir()
	ppath := filepath.Join(dir, "primary.bmeh")
	rpath := filepath.Join(dir, "replica.bmeh")
	paddr, raddr := freePort(t), freePort(t)

	primary := startProc(t, paddr, primaryArgs(ppath)...)
	replica := startProc(t, raddr, "-index", rpath, "-replica-of", paddr, "-cache", "512")

	cl, err := client.Dial(paddr, client.Options{PoolSize: 2, RequestTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	put := func(lo, hi int) {
		t.Helper()
		kvs := make([]bmeh.KV, 0, hi-lo)
		for i := lo; i < hi; i++ {
			kvs = append(kvs, bmeh.KV{Key: bmeh.Key{uint64(i), uint64(i % 89)}, Value: uint64(i)})
		}
		if ins, err := cl.Batch(kvs); err != nil || ins != len(kvs) {
			t.Fatalf("batch: inserted=%d err=%v", ins, err)
		}
		if err := cl.Sync(); err != nil {
			t.Fatal(err)
		}
	}

	put(0, 500)
	awaitNodeSeq(t, raddr, nodeSeq(t, paddr))
	replica.kill()
	put(500, 1500) // committed while the replica is a corpse
	replica = startProc(t, raddr, "-index", rpath, "-replica-of", paddr, "-cache", "512")
	put(1500, 2000)
	awaitNodeSeq(t, raddr, nodeSeq(t, paddr))

	// Spot-check reads directly against the rejoined replica.
	rcl, err := client.Dial(raddr, client.Options{PoolSize: 1, RequestTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 499, 500, 1499, 1999} {
		v, ok, err := rcl.Get(bmeh.Key{uint64(i), uint64(i % 89)})
		if err != nil || !ok || v != uint64(i) {
			t.Fatalf("replica get %d: v=%d ok=%v err=%v", i, v, ok, err)
		}
	}
	// And a write to the replica bounces with the typed error.
	if err := rcl.Put(bmeh.Key{1, 1}, 1); !errors.Is(err, client.ErrReadOnly) {
		t.Fatalf("put to replica: %v, want ErrReadOnly", err)
	}
	rcl.Close()

	primary.term()
	replica.term()
	verifyFiles(t, ppath, rpath)
}
