// Command checkbench gates CI on the invariants a benchmark report is
// supposed to prove, as opposed to its machine-dependent timings. Timing
// ratios on shared runners jitter too much to fail a build over; the
// structural claims — "every mmap read in the measured phases was served
// zero-copy" — do not.
//
// Usage:
//
//	checkbench -mmap BENCH_mmap.json
//	checkbench -mvcc BENCH_mvcc.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// mmapReport is the slice of the BENCH_mmap.json schema the checks need.
type mmapReport struct {
	MmapSupported bool               `json:"mmap_supported"`
	ZeroCopyReads uint64             `json:"mmap_zero_copy_reads"`
	CopiedReads   uint64             `json:"mmap_copied_reads"`
	ZeroCopyOK    bool               `json:"zero_copy_ok"`
	SpeedupMmap   map[string]float64 `json:"speedup_mmap_vs_file"`
}

func checkMmap(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep mmapReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if !rep.MmapSupported {
		// Non-Linux runner: the sweep measured the copying fallback, and
		// there is no zero-copy property to assert.
		fmt.Printf("%s: platform has no mmap; nothing to assert\n", path)
		return nil
	}
	if !rep.ZeroCopyOK {
		return fmt.Errorf("%s: zero_copy_ok=false (%d zero-copy reads, %d copied): the mmap read path made per-read page copies",
			path, rep.ZeroCopyReads, rep.CopiedReads)
	}
	if rep.ZeroCopyReads == 0 {
		return fmt.Errorf("%s: no zero-copy reads recorded; the sweep did not exercise the mmap read path", path)
	}
	fmt.Printf("%s: ok — %d reads, all zero-copy", path, rep.ZeroCopyReads)
	for _, phase := range []string{"cold_get", "warm_miss_get", "range_scan", "bulk_load"} {
		if s, ok := rep.SpeedupMmap[phase]; ok {
			fmt.Printf("; %s %.2fx", phase, s)
		}
	}
	fmt.Println()
	return nil
}

// mvccReport is the slice of the BENCH_mvcc.json schema the checks need.
type mvccReport struct {
	Results []struct {
		Mode               string  `json:"mode"`
		Workload           string  `json:"workload"`
		ReaderOps          uint64  `json:"reader_ops"`
		WriterOpsPerSec    float64 `json:"writer_ops_per_sec"`
		SnapshotConsistent bool    `json:"snapshot_consistent"`
	} `json:"results"`
	ModeStats []struct {
		Mode             string `json:"mode"`
		Epoch            uint64 `json:"epoch"`
		PinnedEpochs     int    `json:"pinned_epochs"`
		ReclaimablePages int    `json:"reclaimable_pages"`
	} `json:"mode_stats"`
}

// checkMVCC asserts the sweep's structural claims: every cell actually
// ran (readers and writer both made progress), every COW range scan was
// snapshot-consistent, COW commits advanced the epoch, and nothing was
// left pinned or unreclaimed when the sweep finished.
func checkMVCC(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep mvccReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	cells := map[string]bool{}
	for _, r := range rep.Results {
		cells[r.Mode+"/"+r.Workload] = true
		if r.ReaderOps == 0 {
			return fmt.Errorf("%s: %s/%s: readers completed no operations", path, r.Mode, r.Workload)
		}
		if r.WriterOpsPerSec == 0 {
			return fmt.Errorf("%s: %s/%s: the saturating writer made no progress", path, r.Mode, r.Workload)
		}
		if r.Mode == "cow" && r.Workload == "range" && !r.SnapshotConsistent {
			return fmt.Errorf("%s: cow/range: snapshot_consistent=false — a pinned snapshot observed a concurrent commit", path)
		}
	}
	for _, want := range []string{"latched/get", "latched/range", "cow/get", "cow/range"} {
		if !cells[want] {
			return fmt.Errorf("%s: cell %s missing from the sweep", path, want)
		}
	}
	for _, m := range rep.ModeStats {
		if m.PinnedEpochs != 0 || m.ReclaimablePages != 0 {
			return fmt.Errorf("%s: mode %s finished with %d pinned epochs, %d reclaimable pages (leak)",
				path, m.Mode, m.PinnedEpochs, m.ReclaimablePages)
		}
		if m.Mode == "cow" && m.Epoch == 0 {
			return fmt.Errorf("%s: mode cow: epoch never advanced — commits did not go through the COW root swap", path)
		}
	}
	fmt.Printf("%s: ok — %d cells, cow/range snapshot-consistent, no pages leaked\n", path, len(rep.Results))
	return nil
}

// clusterReport is the slice of the BENCH_cluster.json schema the
// checks need.
type clusterReport struct {
	NumCPU    int  `json:"num_cpu"`
	SingleCPU bool `json:"single_cpu"`
	Results   []struct {
		Shards       int     `json:"shards"`
		GetOpsPerSec float64 `json:"get_ops_per_sec"`
		PutOpsPerSec float64 `json:"put_ops_per_sec"`
	} `json:"results"`
	GetScaling4x      float64 `json:"get_scaling_4x_over_1x"`
	SplitGetsTotal    int64   `json:"split_gets_total"`
	SplitGetErrors    int64   `json:"split_get_errors"`
	SplitAvailability float64 `json:"split_availability"`
	SplitShardsAfter  int     `json:"split_shards_after"`
}

// checkCluster asserts the cluster sweep's invariants: all three shard
// counts ran and made progress, the online split actually produced a
// second shard, and — the availability claim — not one GET failed
// through it. The 4x/1x GET scaling ratio is only gated on multi-core
// hosts (≥4 CPUs); a single-CPU runner cannot exhibit parallel speedup
// and the report says so via single_cpu.
func checkCluster(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep clusterReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	seen := map[int]bool{}
	for _, r := range rep.Results {
		seen[r.Shards] = true
		if r.GetOpsPerSec <= 0 || r.PutOpsPerSec <= 0 {
			return fmt.Errorf("%s: %d shards: no progress (gets %.0f/s, puts %.0f/s)",
				path, r.Shards, r.GetOpsPerSec, r.PutOpsPerSec)
		}
	}
	for _, want := range []int{1, 2, 4} {
		if !seen[want] {
			return fmt.Errorf("%s: shard count %d missing from the sweep", path, want)
		}
	}
	if rep.SplitGetsTotal == 0 {
		return fmt.Errorf("%s: no GETs issued through the online split", path)
	}
	if rep.SplitGetErrors != 0 || rep.SplitAvailability != 1 {
		return fmt.Errorf("%s: availability %.4f (%d of %d GETs failed through the online split) — want exactly 1.0",
			path, rep.SplitAvailability, rep.SplitGetErrors, rep.SplitGetsTotal)
	}
	if rep.SplitShardsAfter != 2 {
		return fmt.Errorf("%s: split left %d shard(s), want 2", path, rep.SplitShardsAfter)
	}
	if rep.NumCPU >= 4 && !rep.SingleCPU {
		if rep.GetScaling4x < 2 {
			return fmt.Errorf("%s: GET scaling 4x/1x = %.2f on a %d-CPU host, want >= 2.0",
				path, rep.GetScaling4x, rep.NumCPU)
		}
	}
	fmt.Printf("%s: ok — 1/2/4 shards ran, availability 1.0 through the split (%d GETs), scaling %.2fx (num_cpu=%d)\n",
		path, rep.SplitGetsTotal, rep.GetScaling4x, rep.NumCPU)
	return nil
}

func main() {
	mmapPath := flag.String("mmap", "", "BENCH_mmap.json to check")
	mvccPath := flag.String("mvcc", "", "BENCH_mvcc.json to check")
	clusterPath := flag.String("cluster", "", "BENCH_cluster.json to check")
	flag.Parse()
	if (*mmapPath == "" && *mvccPath == "" && *clusterPath == "") || flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *mmapPath != "" {
		if err := checkMmap(*mmapPath); err != nil {
			fmt.Fprintln(os.Stderr, "checkbench:", err)
			os.Exit(1)
		}
	}
	if *mvccPath != "" {
		if err := checkMVCC(*mvccPath); err != nil {
			fmt.Fprintln(os.Stderr, "checkbench:", err)
			os.Exit(1)
		}
	}
	if *clusterPath != "" {
		if err := checkCluster(*clusterPath); err != nil {
			fmt.Fprintln(os.Stderr, "checkbench:", err)
			os.Exit(1)
		}
	}
}
