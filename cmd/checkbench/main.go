// Command checkbench gates CI on the invariants a benchmark report is
// supposed to prove, as opposed to its machine-dependent timings. Timing
// ratios on shared runners jitter too much to fail a build over; the
// structural claims — "every mmap read in the measured phases was served
// zero-copy" — do not.
//
// Usage:
//
//	checkbench -mmap BENCH_mmap.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// mmapReport is the slice of the BENCH_mmap.json schema the checks need.
type mmapReport struct {
	MmapSupported bool               `json:"mmap_supported"`
	ZeroCopyReads uint64             `json:"mmap_zero_copy_reads"`
	CopiedReads   uint64             `json:"mmap_copied_reads"`
	ZeroCopyOK    bool               `json:"zero_copy_ok"`
	SpeedupMmap   map[string]float64 `json:"speedup_mmap_vs_file"`
}

func checkMmap(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep mmapReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if !rep.MmapSupported {
		// Non-Linux runner: the sweep measured the copying fallback, and
		// there is no zero-copy property to assert.
		fmt.Printf("%s: platform has no mmap; nothing to assert\n", path)
		return nil
	}
	if !rep.ZeroCopyOK {
		return fmt.Errorf("%s: zero_copy_ok=false (%d zero-copy reads, %d copied): the mmap read path made per-read page copies",
			path, rep.ZeroCopyReads, rep.CopiedReads)
	}
	if rep.ZeroCopyReads == 0 {
		return fmt.Errorf("%s: no zero-copy reads recorded; the sweep did not exercise the mmap read path", path)
	}
	fmt.Printf("%s: ok — %d reads, all zero-copy", path, rep.ZeroCopyReads)
	for _, phase := range []string{"cold_get", "warm_miss_get", "range_scan", "bulk_load"} {
		if s, ok := rep.SpeedupMmap[phase]; ok {
			fmt.Printf("; %s %.2fx", phase, s)
		}
	}
	fmt.Println()
	return nil
}

func main() {
	mmapPath := flag.String("mmap", "", "BENCH_mmap.json to check")
	flag.Parse()
	if *mmapPath == "" || flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}
	if err := checkMmap(*mmapPath); err != nil {
		fmt.Fprintln(os.Stderr, "checkbench:", err)
		os.Exit(1)
	}
}
