package bmeh

import (
	"path/filepath"
	"testing"
)

// TestRecoveryFsckWithDecodedCache drives the WAL recovery path end to end
// with the decoded-object cache in play: an index is abandoned without
// Close after a mix of synced batches and unsynced tail writes, reopened
// (recovery replays the log), read back through the decoded cache, and
// then checked with the offline Fsck — which must also pass after the
// recovered index makes further (cached) modifications.
func TestRecoveryFsckWithDecodedCache(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rec.bmeh")
	ix, err := Create(path, Options{Dims: 2, PageCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	keys := randKeys(600, 2, 21)
	kvs := make([]KV, len(keys))
	for i, k := range keys {
		kvs[i] = KV{Key: k, Value: uint64(i)}
	}
	// Acked prefix: InsertBatch syncs each batch before returning.
	if n, err := ix.InsertBatch(kvs[:400]); err != nil || n != 400 {
		t.Fatalf("batch: n=%d err=%v", n, err)
	}
	// Unsynced tail: may or may not survive; recovery just has to be
	// consistent about it.
	for _, kv := range kvs[400:] {
		if err := ix.Insert(kv.Key, kv.Value); err != nil {
			t.Fatal(err)
		}
	}
	// Abandon without Close: the "process died" shape of an unclean stop.

	re, err := Open(path, 0)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	for i, k := range keys[:400] {
		if v, ok, err := re.Get(k); err != nil || !ok || v != uint64(i) {
			t.Fatalf("acked key %d lost after recovery: v=%d ok=%v err=%v", i, v, ok, err)
		}
	}
	// Mutate through the recovered index's decoded caches, then re-read.
	for _, k := range keys[:100] {
		if ok, err := re.Delete(k); err != nil || !ok {
			t.Fatalf("delete after recovery: ok=%v err=%v", ok, err)
		}
	}
	for i, k := range keys[100:400] {
		if v, ok, err := re.Get(k); err != nil || !ok || v != uint64(i+100) {
			t.Fatalf("key %d wrong after post-recovery deletes", i+100)
		}
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := Fsck(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("fsck after recovery + cached modifications: %v", rep.Problems)
	}
}
