// Quadtree: the extension from the paper's conclusion — setting ξ_j = 1
// for every dimension turns the BMEH-tree into a *balanced binary
// quadtree* (d = 2; an octtree for d = 3): every directory node holds at
// most 2^d elements, one per quadrant, and the tree stays perfectly height
// balanced, which classic quadtrees cannot guarantee. This example builds
// both the quadtree variant and the default (φ = 6) configuration over the
// same clustered point set and compares their shapes.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bmeh"
)

func clusteredPoints(n int, seed int64) []bmeh.Key {
	rng := rand.New(rand.NewSource(seed))
	centers := [][2]float64{
		{0.2, 0.3}, {0.7, 0.8}, {0.8, 0.2}, {0.45, 0.55},
	}
	seen := map[[2]uint64]bool{}
	keys := make([]bmeh.Key, 0, n)
	for len(keys) < n {
		c := centers[rng.Intn(len(centers))]
		x := c[0] + rng.NormFloat64()*0.05
		y := c[1] + rng.NormFloat64()*0.05
		k := bmeh.Key{bmeh.Bounded(x, 0, 1), bmeh.Bounded(y, 0, 1)}
		sig := [2]uint64{k[0], k[1]}
		if seen[sig] {
			continue
		}
		seen[sig] = true
		keys = append(keys, k)
	}
	return keys
}

func build(name string, nodeBits []int, points []bmeh.Key) *bmeh.Index {
	ix, err := bmeh.New(bmeh.Options{Dims: 2, PageCapacity: 8, NodeBits: nodeBits})
	if err != nil {
		log.Fatal(err)
	}
	for i, k := range points {
		if err := ix.Insert(k, uint64(i)); err != nil {
			log.Fatal(err)
		}
	}
	st := ix.Stats()
	fmt.Printf("%-22s levels=%2d  dir elements=%6d  dir pages=%4d  data pages=%4d  load=%.2f\n",
		name, st.DirectoryLevels, st.DirectoryElements, st.DirectoryPages, st.DataPages, st.LoadFactor)
	return ix
}

func main() {
	points := clusteredPoints(10000, 11)
	fmt.Println("10,000 clustered points, page capacity 8:")
	quad := build("balanced quadtree ξ=⟨1,1⟩", []int{1, 1}, points)
	defer quad.Close()
	std := build("default BMEH ξ=⟨3,3⟩", []int{3, 3}, points)
	defer std.Close()

	// Both answer the same region query with the same result set; the
	// quadtree trades deeper descent for four-way fan-out per node.
	lo := bmeh.Key{bmeh.Bounded(0.15, 0, 1), bmeh.Bounded(0.25, 0, 1)}
	hi := bmeh.Key{bmeh.Bounded(0.25, 0, 1), bmeh.Bounded(0.35, 0, 1)}
	count := func(ix *bmeh.Index) int {
		n := 0
		if err := ix.Range(lo, hi, func(bmeh.Key, uint64) bool { n++; return true }); err != nil {
			log.Fatal(err)
		}
		return n
	}
	q, s := count(quad), count(std)
	fmt.Printf("\nregion query around cluster 1: quadtree=%d hits, default=%d hits\n", q, s)
	if q != s {
		log.Fatal("result sets disagree!")
	}

	// The quadtree mode keeps the balance guarantee: every search costs
	// exactly `levels` page reads.
	before := quad.Stats()
	probes := 0
	for i := 0; i < 1000; i += 10 {
		if _, ok, _ := quad.Get(points[i]); !ok {
			log.Fatal("lost point")
		}
		probes++
	}
	after := quad.Stats()
	fmt.Printf("quadtree: %d probes cost %d reads (exactly levels=%d each — balanced)\n",
		probes, after.Reads-before.Reads, before.DirectoryLevels)
}
