// Persistence: create a file-backed BMEH-tree index with a page cache,
// load it with data, close it, reopen it, and keep working — demonstrating
// the durable lifecycle (Create / Sync / Close / Open) and cache effects.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"bmeh"
)

func main() {
	dir, err := os.MkdirTemp("", "bmeh-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "sensors.bmeh")

	// Phase 1: build a (time, sensor) index of synthetic measurements.
	ix, err := bmeh.Create(path, bmeh.Options{
		Dims:         2,
		PageCapacity: 32,
		CacheFrames:  512,
	})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	base := uint64(1700000000) // seconds
	const n = 30000
	start := time.Now()
	for i := 0; i < n; i++ {
		k := bmeh.Key{
			(base + uint64(i)) % (1 << 31), // timestamp-ish, monotone
			uint64(rng.Intn(64)) << 24,     // sensor id, scaled to high bits
		}
		if err := ix.Insert(k, uint64(i)); err != nil && err != bmeh.ErrDuplicate {
			log.Fatal(err)
		}
	}
	st := ix.Stats()
	fmt.Printf("built %d records in %v: %d levels, %d data pages, physical I/O %d+%d\n",
		st.Records, time.Since(start).Round(time.Millisecond),
		st.DirectoryLevels, st.DataPages, st.Reads, st.Writes)
	if err := ix.Close(); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("index file: %d KiB\n", info.Size()/1024)

	// Phase 2: reopen and query.
	re, err := bmeh.Open(path, 512)
	if err != nil {
		log.Fatal(err)
	}
	defer re.Close()
	fmt.Printf("reopened: %d records, %d levels\n", re.Len(), re.Stats().DirectoryLevels)

	// A time-window query for one sensor (partial range).
	lo := bmeh.Key{(base + 1000) % (1 << 31), 17 << 24}
	hi := bmeh.Key{(base + 2000) % (1 << 31), 17 << 24}
	hits := 0
	if err := re.Range(lo, hi, func(bmeh.Key, uint64) bool { hits++; return true }); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensor 17, 1000-second window: %d measurements\n", hits)

	// Continue mutating the reopened index; durability via Sync.
	for i := 0; i < 100; i++ {
		k := bmeh.Key{(base + uint64(n+i)) % (1 << 31), uint64(rng.Intn(64)) << 24}
		if err := re.Insert(k, uint64(n+i)); err != nil && err != bmeh.ErrDuplicate {
			log.Fatal(err)
		}
	}
	if err := re.Sync(); err != nil {
		log.Fatal(err)
	}
	if err := re.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("appended 100 more; index validates with %d records\n", re.Len())
}
