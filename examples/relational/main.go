// Relational: a 3-attribute employee file indexed on (age, salary,
// tenure) — the multi-key associative-search workload of the paper's
// introduction. The example runs the same partial-range queries against all
// three directory organizations and compares their page I/O and directory
// sizes, reproducing in miniature the paper's argument for the BMEH-tree:
// skewed attribute values (salaries are log-normal-ish) blow up the flat
// directory while the balanced tree stays linear.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"text/tabwriter"

	"bmeh"
)

type employee struct {
	age    float64 // years, fractional (derived from a birth date)
	salary float64 // dollars/year — heavily skewed (log-normal)
	tenure float64 // months, fractional
}

func synthesize(n int, seed int64) []employee {
	rng := rand.New(rand.NewSource(seed))
	out := make([]employee, n)
	for i := range out {
		age := 22 + rng.Float64()*43
		// Log-normal salary: most cluster low, long right tail.
		salary := 28000 * math.Exp(rng.NormFloat64()*0.55+(age-22)*0.012)
		tenure := rng.Float64() * (age - 21) * 12
		out[i] = employee{age: age, salary: salary, tenure: tenure}
	}
	return out
}

// key encodes the attribute triple order-preservingly. Each attribute is
// rescaled onto the full 32-bit component range with Bounded: prefix-based
// extendible hashing discriminates keys by their *leading* bits, so small
// integers left unscaled (all-zero high bits) would force every scheme —
// catastrophically so the flat MDEH directory — to split down to the very
// bits where the values differ. Scaling to the component range is the ψ
// encoding discipline the paper assumes.
func key(e employee) bmeh.Key {
	return bmeh.Key{
		bmeh.Bounded(e.age, 18, 70),
		bmeh.Bounded(e.salary, 0, 500000),
		bmeh.Bounded(e.tenure, 0, 600),
	}
}

func main() {
	emps := synthesize(20000, 7)
	schemes := []bmeh.Scheme{bmeh.SchemeBMEH, bmeh.SchemeMDEH, bmeh.SchemeMEH}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\tσ (dir elements)\tlevels\tbuild reads+writes\tquery reads\thits")
	for _, s := range schemes {
		ix, err := bmeh.New(bmeh.Options{Scheme: s, Dims: 3, PageCapacity: 16})
		if err != nil {
			log.Fatal(err)
		}
		dups := 0
		for i, e := range emps {
			if err := ix.Insert(key(e), uint64(i)); err != nil {
				if err == bmeh.ErrDuplicate {
					dups++
					continue
				}
				log.Fatal(err)
			}
		}
		built := ix.Stats()

		// Partial-range query: age 30..40, salary 50k..90k, any tenure.
		ulo, uhi := bmeh.Unbounded(32)
		lo := bmeh.Key{bmeh.Bounded(30, 18, 70), bmeh.Bounded(50000, 0, 500000), ulo}
		hi := bmeh.Key{bmeh.Bounded(40, 18, 70), bmeh.Bounded(90000, 0, 500000), uhi}
		hits := 0
		if err := ix.Range(lo, hi, func(bmeh.Key, uint64) bool { hits++; return true }); err != nil {
			log.Fatal(err)
		}
		after := ix.Stats()
		fmt.Fprintf(tw, "%v\t%d\t%d\t%d\t%d\t%d\n",
			s, built.DirectoryElements, built.DirectoryLevels,
			built.Reads+built.Writes, after.Reads-built.Reads, hits)
		if dups > 0 {
			fmt.Fprintf(os.Stderr, "(%d duplicate attribute triples skipped for %v)\n", dups, s)
		}
		ix.Close()
	}
	tw.Flush()

	// Show a few matches for context (BMEH index).
	ix, err := bmeh.New(bmeh.Options{Dims: 3, PageCapacity: 16})
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()
	for i, e := range emps {
		if err := ix.Insert(key(e), uint64(i)); err != nil && err != bmeh.ErrDuplicate {
			log.Fatal(err)
		}
	}
	fmt.Println("\nexact-match probe and sample partial-match results:")
	if v, ok, _ := ix.Get(key(emps[100])); ok {
		e := emps[v]
		fmt.Printf("  employee #%d: age %.1f, salary $%.0f, tenure %.0f months\n", v, e.age, e.salary, e.tenure)
	}
	ulo, uhi := bmeh.Unbounded(32)
	shown := 0
	err = ix.Range(
		bmeh.Key{bmeh.Bounded(60, 18, 70), ulo, ulo},
		bmeh.Key{bmeh.Bounded(64, 18, 70), uhi, uhi},
		func(k bmeh.Key, v uint64) bool {
			e := emps[v]
			fmt.Printf("  age %.1f, salary $%.0f, tenure %.0fm\n", e.age, e.salary, e.tenure)
			shown++
			return shown < 5
		})
	if err != nil {
		log.Fatal(err)
	}
}
