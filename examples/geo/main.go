// Geo: index world cities by (longitude, latitude) with the Bounded
// order-preserving encoder and answer bounding-box queries — the spatial
// workload the paper's introduction motivates (geographic databases with a
// high degree of associative searching). Real coordinates are strongly
// non-uniform (cities cluster on coastlines and in Europe/Asia), exactly
// the distribution shape the BMEH-tree's balanced directory is built for.
package main

import (
	"fmt"
	"log"

	"bmeh"
)

type city struct {
	name     string
	lon, lat float64
	pop      uint64 // thousands
}

// A small embedded gazetteer (coordinates approximate).
var cities = []city{
	{"Tokyo", 139.69, 35.69, 37400}, {"Delhi", 77.10, 28.70, 31000},
	{"Shanghai", 121.47, 31.23, 27800}, {"São Paulo", -46.63, -23.55, 22400},
	{"Mexico City", -99.13, 19.43, 21900}, {"Cairo", 31.24, 30.04, 21300},
	{"Mumbai", 72.88, 19.08, 20700}, {"Beijing", 116.41, 39.90, 20500},
	{"Dhaka", 90.41, 23.81, 21700}, {"Osaka", 135.50, 34.69, 19100},
	{"New York", -74.01, 40.71, 18800}, {"Karachi", 67.01, 24.86, 16800},
	{"Buenos Aires", -58.38, -34.60, 15200}, {"Chongqing", 106.55, 29.56, 16400},
	{"Istanbul", 28.98, 41.01, 15600}, {"Kolkata", 88.36, 22.57, 14900},
	{"Manila", 120.98, 14.60, 14200}, {"Lagos", 3.39, 6.52, 14900},
	{"Rio de Janeiro", -43.17, -22.91, 13600}, {"Tianjin", 117.18, 39.13, 13600},
	{"Kinshasa", 15.27, -4.44, 14300}, {"Guangzhou", 113.26, 23.13, 13500},
	{"Los Angeles", -118.24, 34.05, 12500}, {"Moscow", 37.62, 55.76, 12600},
	{"Shenzhen", 114.06, 22.54, 12600}, {"Lahore", 74.33, 31.55, 13100},
	{"Bangalore", 77.59, 12.97, 12800}, {"Paris", 2.35, 48.86, 11100},
	{"Bogotá", -74.07, 4.71, 11000}, {"Jakarta", 106.85, -6.21, 10800},
	{"Chennai", 80.27, 13.08, 11200}, {"Lima", -77.04, -12.05, 10900},
	{"Bangkok", 100.50, 13.76, 10700}, {"Seoul", 126.98, 37.57, 9970},
	{"Nagoya", 136.91, 35.18, 9570}, {"Hyderabad", 78.49, 17.39, 10300},
	{"London", -0.13, 51.51, 9540}, {"Tehran", 51.39, 35.69, 9380},
	{"Chicago", -87.63, 41.88, 8900}, {"Chengdu", 104.07, 30.57, 9480},
	{"Nairobi", 36.82, -1.29, 5120}, {"Ho Chi Minh City", 106.63, 10.82, 9320},
	{"Luanda", 13.23, -8.84, 8950}, {"Wuhan", 114.31, 30.59, 8960},
	{"Xi'an", 108.94, 34.34, 8690}, {"Ahmedabad", 72.58, 23.02, 8450},
	{"Kuala Lumpur", 101.69, 3.14, 8420}, {"Hangzhou", 120.16, 30.25, 8240},
	{"Hong Kong", 114.17, 22.32, 7650}, {"Dongguan", 113.75, 23.02, 7980},
	{"Foshan", 113.12, 23.02, 7900}, {"Shenyang", 123.43, 41.81, 7590},
	{"Riyadh", 46.72, 24.69, 7680}, {"Baghdad", 44.36, 33.31, 7510},
	{"Santiago", -70.67, -33.45, 6900}, {"Surat", 72.83, 21.17, 7490},
	{"Madrid", -3.70, 40.42, 6710}, {"Suzhou", 120.58, 31.30, 7430},
	{"Pune", 73.86, 18.52, 6990}, {"Harbin", 126.53, 45.80, 7000},
	{"Houston", -95.37, 29.76, 6370}, {"Dallas", -96.80, 32.78, 6490},
	{"Toronto", -79.38, 43.65, 6250}, {"Dar es Salaam", 39.28, -6.79, 6700},
	{"Miami", -80.19, 25.76, 6220}, {"Belo Horizonte", -43.94, -19.92, 6120},
	{"Singapore", 103.85, 1.29, 5980}, {"Philadelphia", -75.17, 39.95, 5730},
	{"Atlanta", -84.39, 33.75, 5890}, {"Fukuoka", 130.40, 33.59, 5530},
	{"Khartoum", 32.56, 15.50, 5830}, {"Barcelona", 2.17, 41.39, 5590},
	{"Johannesburg", 28.05, -26.20, 5780}, {"St Petersburg", 30.34, 59.93, 5470},
	{"Saidu Sharif", 72.35, 34.75, 5280}, {"Washington", -77.04, 38.91, 5320},
	{"Yangon", 96.16, 16.87, 5330}, {"Alexandria", 29.96, 31.20, 5280},
	{"Guadalajara", -103.35, 20.67, 5260}, {"Ankara", 32.85, 39.93, 5120},
	{"Sydney", 151.21, -33.87, 4990}, {"Melbourne", 144.96, -37.81, 4970},
	{"Cape Town", 18.42, -33.93, 4620}, {"Berlin", 13.40, 52.52, 3570},
	{"Auckland", 174.76, -36.85, 1650}, {"Anchorage", -149.90, 61.22, 290},
	{"Reykjavík", -21.94, 64.15, 130}, {"Ushuaia", -68.30, -54.80, 57},
}

// enc maps (lon, lat) to an order-preserving 2-dimensional key.
func enc(lon, lat float64) bmeh.Key {
	return bmeh.Key{
		bmeh.Bounded(lon, -180, 180),
		bmeh.Bounded(lat, -90, 90),
	}
}

func main() {
	ix, err := bmeh.New(bmeh.Options{Dims: 2, PageCapacity: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()

	for i, c := range cities {
		if err := ix.Insert(enc(c.lon, c.lat), uint64(i)); err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
	}
	fmt.Printf("indexed %d cities\n", ix.Len())

	boxes := []struct {
		name                   string
		lon0, lat0, lon1, lat1 float64
	}{
		{"Europe", -11, 35, 40, 66},
		{"South Asia", 60, 5, 95, 37},
		{"Americas", -170, -56, -30, 72},
		{"Southern hemisphere", -180, -90, 180, 0},
	}
	for _, b := range boxes {
		fmt.Printf("\ncities in %s:\n", b.name)
		err := ix.Range(enc(b.lon0, b.lat0), enc(b.lon1, b.lat1),
			func(k bmeh.Key, v uint64) bool {
				c := cities[v]
				fmt.Printf("  %-16s (%7.2f, %6.2f) pop %dk\n", c.name, c.lon, c.lat, c.pop)
				return true
			})
		if err != nil {
			log.Fatal(err)
		}
	}

	// Partial match: everything between 50°N and 70°N, any longitude.
	ulo, uhi := bmeh.Unbounded(32)
	fmt.Println("\ncities between 50°N and 70°N:")
	err = ix.Range(
		bmeh.Key{ulo, bmeh.Bounded(50, -90, 90)},
		bmeh.Key{uhi, bmeh.Bounded(70, -90, 90)},
		func(k bmeh.Key, v uint64) bool {
			fmt.Printf("  %s\n", cities[v].name)
			return true
		})
	if err != nil {
		log.Fatal(err)
	}

	st := ix.Stats()
	fmt.Printf("\ndirectory: %d elements, %d levels; clustered coordinates handled with σ linear in n\n",
		st.DirectoryElements, st.DirectoryLevels)
}
