// Quickstart: create a 2-dimensional BMEH-tree index, insert records, look
// them up, run a box query, and inspect storage statistics.
package main

import (
	"fmt"
	"log"

	"bmeh"
)

func main() {
	// A 2-dimensional index with small pages (so the directory structure
	// is visible even with few records).
	ix, err := bmeh.New(bmeh.Options{
		Dims:         2,
		PageCapacity: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()

	// Insert a grid of points keyed by (x, y); the value is a record id.
	id := uint64(0)
	for x := uint64(0); x < 64; x++ {
		for y := uint64(0); y < 64; y++ {
			key := bmeh.Key{x << 24, y << 24}
			if err := ix.Insert(key, id); err != nil {
				log.Fatal(err)
			}
			id++
		}
	}
	fmt.Printf("inserted %d records\n", ix.Len())

	// Exact-match lookup.
	v, ok, err := ix.Get(bmeh.Key{5 << 24, 9 << 24})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("point (5,9): value=%d found=%v\n", v, ok)

	// Orthogonal range query: all points with 10 ≤ x ≤ 13 and 20 ≤ y ≤ 22.
	lo := bmeh.Key{10 << 24, 20 << 24}
	hi := bmeh.Key{13 << 24, 22 << 24}
	n := 0
	err = ix.Range(lo, hi, func(k bmeh.Key, v uint64) bool {
		fmt.Printf("  hit (%d,%d) -> %d\n", k[0]>>24, k[1]>>24, v)
		n++
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range query matched %d records\n", n)

	// Partial-match query: fix x = 7, leave y unconstrained.
	ulo, uhi := bmeh.Unbounded(32)
	n = 0
	err = ix.Range(bmeh.Key{7 << 24, ulo}, bmeh.Key{7 << 24, uhi},
		func(bmeh.Key, uint64) bool { n++; return true })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partial match x=7 matched %d records\n", n)

	// Delete and verify.
	if _, err := ix.Delete(bmeh.Key{5 << 24, 9 << 24}); err != nil {
		log.Fatal(err)
	}
	_, ok, _ = ix.Get(bmeh.Key{5 << 24, 9 << 24})
	fmt.Printf("after delete, found=%v\n", ok)

	st := ix.Stats()
	fmt.Printf("directory: %d elements in %d pages over %d levels; %d data pages, load %.2f\n",
		st.DirectoryElements, st.DirectoryPages, st.DirectoryLevels, st.DataPages, st.LoadFactor)
}
