package bmeh

// Model-based randomized testing: every scheme is driven through long
// random operation sequences and checked step-by-step against a plain map
// model, with periodic structural validation and range cross-checks. This
// is the library's strongest correctness net — any divergence between the
// paged structures and the model is a real bug.

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// modelKey is a comparable rendering of a Key for the map model.
func modelKey(k Key) string {
	return fmt.Sprint([]uint64(k))
}

// opMix drives ops against one index configuration with the given rng and
// operation count, verifying against a model continuously.
func opMix(t *testing.T, opts Options, rng *rand.Rand, ops int, keySpaceBits uint) {
	t.Helper()
	ix, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	model := make(map[string]uint64)
	var keys []Key // insertion-ordered live keys (may contain deleted)
	randKey := func() Key {
		// Keys vary in their keySpaceBits leading bits (prefix hashing
		// discriminates by leading bits; a small dense space maximizes
		// collisions, splits and merges).
		shift := uint(opts.width()) - keySpaceBits
		k := make(Key, opts.Dims)
		for j := range k {
			k[j] = (rng.Uint64() & (1<<keySpaceBits - 1)) << shift
		}
		return k
	}
	existingKey := func() (Key, bool) {
		if len(keys) == 0 {
			return nil, false
		}
		for try := 0; try < 8; try++ {
			k := keys[rng.Intn(len(keys))]
			if _, ok := model[modelKey(k)]; ok {
				return k, true
			}
		}
		return nil, false
	}
	for i := 0; i < ops; i++ {
		switch op := rng.Intn(10); {
		case op < 5: // insert
			k := randKey()
			mk := modelKey(k)
			_, exists := model[mk]
			err := ix.Insert(k, uint64(i))
			switch {
			case exists && err != ErrDuplicate:
				t.Fatalf("op %d: duplicate insert of %v returned %v", i, k, err)
			case !exists && err != nil:
				t.Fatalf("op %d: insert %v: %v", i, k, err)
			case !exists:
				model[mk] = uint64(i)
				keys = append(keys, k)
			}
		case op < 7: // delete (mostly existing)
			var k Key
			if ek, ok := existingKey(); ok && rng.Intn(4) > 0 {
				k = ek
			} else {
				k = randKey()
			}
			mk := modelKey(k)
			_, exists := model[mk]
			ok, err := ix.Delete(k)
			if err != nil {
				t.Fatalf("op %d: delete %v: %v", i, k, err)
			}
			if ok != exists {
				t.Fatalf("op %d: delete %v reported %v, model says %v", i, k, ok, exists)
			}
			delete(model, mk)
		case op < 9: // point lookup
			var k Key
			if ek, ok := existingKey(); ok && rng.Intn(3) > 0 {
				k = ek
			} else {
				k = randKey()
			}
			want, exists := model[modelKey(k)]
			v, ok, err := ix.Get(k)
			if err != nil {
				t.Fatalf("op %d: get %v: %v", i, k, err)
			}
			if ok != exists || (ok && v != want) {
				t.Fatalf("op %d: get %v = (%d,%v), model (%d,%v)", i, k, v, ok, want, exists)
			}
		default: // range cross-check
			a, b := randKey(), randKey()
			lo := make(Key, opts.Dims)
			hi := make(Key, opts.Dims)
			for j := range lo {
				lo[j], hi[j] = a[j], b[j]
				if lo[j] > hi[j] {
					lo[j], hi[j] = hi[j], lo[j]
				}
			}
			// Model count, derived from the live subset of keys.
			want := 0
			counted := map[string]bool{}
			for _, k := range keys {
				mk := modelKey(k)
				if counted[mk] {
					continue
				}
				counted[mk] = true
				if _, live := model[mk]; !live {
					continue
				}
				in := true
				for j := range k {
					if k[j] < lo[j] || k[j] > hi[j] {
						in = false
						break
					}
				}
				if in {
					want++
				}
			}
			got := 0
			seen := map[string]bool{}
			err := ix.Range(lo, hi, func(k Key, v uint64) bool {
				mk := modelKey(k)
				if seen[mk] {
					t.Fatalf("op %d: range delivered %v twice", i, k)
				}
				seen[mk] = true
				mv, live := model[mk]
				if !live || mv != v {
					t.Fatalf("op %d: range delivered %v=%d, model (%d,%v)", i, k, v, mv, live)
				}
				got++
				return true
			})
			if err != nil {
				t.Fatalf("op %d: range: %v", i, err)
			}
			if got != want {
				t.Fatalf("op %d: range matched %d records, model says %d", i, got, want)
			}
		}
		if i%500 == 499 {
			if err := ix.Validate(); err != nil {
				t.Fatalf("op %d: validate: %v", i, err)
			}
			if ix.Len() != len(model) {
				t.Fatalf("op %d: Len=%d model=%d", i, ix.Len(), len(model))
			}
		}
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != len(model) {
		t.Fatalf("final Len=%d model=%d", ix.Len(), len(model))
	}
}

// width resolves the effective component width of the options.
func (o Options) width() int {
	if o.Width == 0 {
		return 32
	}
	return o.Width
}

func TestModelRandomOps(t *testing.T) {
	configs := []struct {
		name string
		opts Options
		bits uint
	}{
		{"BMEH-2d", Options{Scheme: SchemeBMEH, Dims: 2, PageCapacity: 4}, 8},
		{"BMEH-3d", Options{Scheme: SchemeBMEH, Dims: 3, PageCapacity: 6}, 6},
		{"BMEH-quadtree", Options{Scheme: SchemeBMEH, Dims: 2, PageCapacity: 3, NodeBits: []int{1, 1}}, 7},
		{"BMEH-asym", Options{Scheme: SchemeBMEH, Dims: 2, PageCapacity: 4, NodeBits: []int{3, 1}}, 8},
		{"BMEH-wide", Options{Scheme: SchemeBMEH, Dims: 2, PageCapacity: 8, Width: 16}, 10},
		{"MDEH-2d", Options{Scheme: SchemeMDEH, Dims: 2, PageCapacity: 4}, 8},
		{"MDEH-3d", Options{Scheme: SchemeMDEH, Dims: 3, PageCapacity: 6}, 6},
		{"MEH-2d", Options{Scheme: SchemeMEH, Dims: 2, PageCapacity: 4}, 8},
		{"MEH-3d", Options{Scheme: SchemeMEH, Dims: 3, PageCapacity: 6}, 6},
	}
	for _, c := range configs {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			ops := 4000
			if testing.Short() {
				ops = 800
			}
			opMix(t, c.opts, rand.New(rand.NewSource(0xB0E5)), ops, c.bits)
		})
	}
}

// TestModelDenseKeySpace hammers a tiny key space so duplicates, deletes
// and re-inserts of the same keys dominate — the regime where region
// bookkeeping errors surface.
func TestModelDenseKeySpace(t *testing.T) {
	for _, s := range []Scheme{SchemeBMEH, SchemeMDEH, SchemeMEH} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			t.Parallel()
			ops := 6000
			if testing.Short() {
				ops = 1000
			}
			opMix(t, Options{Scheme: s, Dims: 2, PageCapacity: 2, Width: 12}, rand.New(rand.NewSource(7)), ops, 4)
		})
	}
}

// TestSchemesAgree checks that all three schemes give identical answers to
// identical operation sequences (they index the same records; only the
// directory differs).
func TestSchemesAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ixs := make([]*Index, 3)
		for i, s := range []Scheme{SchemeBMEH, SchemeMDEH, SchemeMEH} {
			ix, err := New(Options{Scheme: s, Dims: 2, PageCapacity: 4})
			if err != nil {
				return false
			}
			defer ix.Close()
			ixs[i] = ix
		}
		var keys []Key
		for i := 0; i < 300; i++ {
			k := Key{uint64(rng.Intn(1<<10) << 21), uint64(rng.Intn(1<<10) << 21)}
			keys = append(keys, k)
			var results [3]error
			for j, ix := range ixs {
				results[j] = ix.Insert(k, uint64(i))
			}
			if results[0] != results[1] || results[1] != results[2] {
				return false
			}
		}
		// Random deletions must agree.
		for i := 0; i < 100; i++ {
			k := keys[rng.Intn(len(keys))]
			var oks [3]bool
			for j, ix := range ixs {
				ok, err := ix.Delete(k)
				if err != nil {
					return false
				}
				oks[j] = ok
			}
			if oks[0] != oks[1] || oks[1] != oks[2] {
				return false
			}
		}
		// All lookups agree.
		for _, k := range keys {
			var vs [3]uint64
			var oks [3]bool
			for j, ix := range ixs {
				v, ok, err := ix.Get(k)
				if err != nil {
					return false
				}
				vs[j], oks[j] = v, ok
			}
			if oks[0] != oks[1] || oks[1] != oks[2] {
				return false
			}
			if oks[0] && (vs[0] != vs[1] || vs[1] != vs[2]) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 10}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
