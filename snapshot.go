package bmeh

import (
	"errors"
	"fmt"
	"io"

	"bmeh/internal/bitkey"
	"bmeh/internal/core"
	"bmeh/internal/pagestore"
)

// ErrSnapshots reports a Snapshot call against an index that cannot take
// one: snapshots require SchemeBMEH running under WriteModeCOW.
var ErrSnapshots = errors.New("bmeh: snapshots require SchemeBMEH with WriteModeCOW")

// ErrSnapshotReleased reports a read on a snapshot whose pin was
// force-released because it exceeded Options.SnapshotMaxPinAge. The
// snapshot is dead; Close it and take a new one.
var ErrSnapshotReleased = core.ErrSnapshotReleased

// Snapshot is a consistent, immutable view of the index at one commit
// epoch. It is created by Index.Snapshot under WriteModeCOW, reads
// latch-free (Get and Range never block writers and are never blocked by
// them), and holds its pages against reclamation until Close. A snapshot
// left open pins every page version retired since it was taken — close
// promptly on long-running indexes.
type Snapshot struct {
	ix *Index
	ts *core.TreeSnapshot
}

// Snapshot pins the current committed state of the index. It fails with
// ErrSnapshots unless the index is a BMEH tree in WriteModeCOW.
func (ix *Index) Snapshot() (*Snapshot, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.closed {
		return nil, pagestore.ErrClosed
	}
	tr, ok := ix.idx.(*core.Tree)
	if !ok || !tr.COWEnabled() {
		return nil, ErrSnapshots
	}
	ts, err := tr.Snapshot()
	if err != nil {
		if errors.Is(err, core.ErrSnapshotMode) {
			return nil, ErrSnapshots
		}
		return nil, err
	}
	return &Snapshot{ix: ix, ts: ts}, nil
}

// Epoch returns the commit epoch the snapshot pins. Epochs increase by
// one per committed mutation, so two snapshots with equal epochs are
// views of the identical tree.
func (s *Snapshot) Epoch() uint64 { return s.ts.Epoch() }

// Len returns the number of records in the snapshot.
func (s *Snapshot) Len() int { return s.ts.Len() }

// Close releases the snapshot's pin, allowing the pages it held to be
// reclaimed. Idempotent; the snapshot must not be used afterwards.
func (s *Snapshot) Close() error { return s.ts.Close() }

// Get returns the value stored under key in the snapshot's frozen state.
func (s *Snapshot) Get(k Key) (uint64, bool, error) {
	v, err := s.ix.key(k)
	if err != nil {
		return 0, false, err
	}
	return s.ts.Get(v)
}

// Range calls fn for every record of the snapshot whose key lies in the
// axis-aligned box [lo_j, hi_j], stopping early if fn returns false. The
// scan is consistent: it observes exactly the records of the pinned
// epoch, whatever writers commit meanwhile.
func (s *Snapshot) Range(lo, hi Key, fn func(k Key, value uint64) bool) error {
	vlo, err := s.ix.key(lo)
	if err != nil {
		return err
	}
	vhi, err := s.ix.key(hi)
	if err != nil {
		return err
	}
	return s.ts.Range(vlo, vhi, func(k bitkey.Vector, v uint64) bool {
		pk := make(Key, len(k))
		for j, c := range k {
			pk[j] = uint64(c)
		}
		return fn(pk, v)
	})
}

// WriteTo streams a complete, self-contained index file holding exactly
// the snapshot's state to w — an online backup. Only the pages reachable
// from the pinned root are copied (plus a fresh header), so the backup's
// size tracks the live data, not the store's high-water mark, and the
// stream never blocks readers or writers beyond brief per-page store
// locks. The result opens with Open like any index file. File-backed
// indexes only.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	ix := s.ix
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.closed {
		return 0, pagestore.ErrClosed
	}
	if ix.file == nil {
		return 0, fmt.Errorf("bmeh: snapshot backup requires a file-backed index")
	}
	// The snapshot's pages are immutable, but their bytes may still sit in
	// the decoded-page write-back queue or the frame pool above the store;
	// push both down so the store-level stream reads current images. Both
	// flushes are concurrency-safe, and a pinned page cannot be re-dirtied
	// after the flush (committed pages are never rewritten under COW).
	if tr, ok := ix.idx.(*core.Tree); ok {
		if err := tr.FlushDirtyPages(); err != nil {
			return 0, err
		}
	}
	if ix.cached != nil {
		if err := ix.cached.Flush(); err != nil {
			return 0, err
		}
	}
	ids, err := s.ts.ReachableIDs()
	if err != nil {
		return 0, err
	}
	rec, err := s.ts.MarshalMeta()
	if err != nil {
		return 0, err
	}
	return ix.file.SnapshotReachable(ids, rec, w)
}

// SnapshotStats describes the MVCC state of an index.
type SnapshotStats struct {
	// COW reports whether the index runs under WriteModeCOW.
	COW bool
	// Epoch is the current commit epoch (0 until the first COW commit).
	Epoch uint64
	// PinnedEpochs is the number of distinct epochs open snapshots pin.
	PinnedEpochs int
	// ReclaimablePages counts pages retired by commits but not yet
	// recycled — they are held for open snapshots (or for the next
	// reclamation pass). Persistent growth here means a snapshot is being
	// held open across heavy write traffic.
	ReclaimablePages int
	// ForcedReleases counts snapshot pins force-released by the
	// max-pin-age sweep (Options.SnapshotMaxPinAge) over the index's
	// lifetime. Non-zero means some caller leaked a snapshot.
	ForcedReleases uint64
}

// SnapshotStats reports the index's MVCC counters. All zero for schemes
// and modes without snapshot support.
func (ix *Index) SnapshotStats() SnapshotStats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	tr, ok := ix.idx.(*core.Tree)
	if !ok || ix.closed {
		return SnapshotStats{}
	}
	return SnapshotStats{
		COW:              tr.COWEnabled(),
		Epoch:            tr.Epoch(),
		PinnedEpochs:     tr.PinnedEpochs(),
		ReclaimablePages: tr.ReclaimablePages(),
		ForcedReleases:   tr.ForcedReleases(),
	}
}
