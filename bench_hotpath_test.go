package bmeh

// Hot-path benchmarks for the zero-decode read path and the batched write
// API. BenchmarkGetHot is the headline single-threaded number: every probe
// hits the decoded-node cache, so a Get is pure pointer-chasing with no
// deserialization and (at steady state) no allocation. The file-backend
// pair compares per-operation Insert+Sync against InsertBatch, which takes
// the write lock once per batch and group-commits a single Sync.
//
// BENCH_hotpath.json at the repo root records before/after numbers for
// these paths (plus BenchmarkSearch / BenchmarkParallelGet).

import (
	"path/filepath"
	"testing"
)

// BenchmarkGetHot measures a single-threaded exact-match lookup with the
// whole working set resident in the decoded-node cache.
func BenchmarkGetHot(b *testing.B) {
	const n = 20000
	ix := newWarmBenchIndex(b, n)
	defer ix.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := benchKey(mix64(uint64(i)) % n)
		if _, ok, err := ix.Get(k); err != nil || !ok {
			b.Fatalf("get: ok=%v err=%v", ok, err)
		}
	}
}

func newFileBenchIndex(b *testing.B) *Index {
	b.Helper()
	path := filepath.Join(b.TempDir(), "bench.bmeh")
	ix, err := Create(path, Options{Dims: 2, PageCapacity: 32, CacheFrames: 4096})
	if err != nil {
		b.Fatal(err)
	}
	return ix
}

// BenchmarkFileInsertSync is the per-operation baseline: one Insert and
// one durable Sync per record on the file backend.
func BenchmarkFileInsertSync(b *testing.B) {
	ix := newFileBenchIndex(b)
	defer ix.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := uint64(i) + 1
		if err := ix.Insert(benchKey(v), v); err != nil {
			b.Fatal(err)
		}
		if err := ix.Sync(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFileInsertBatch loads the same stream through InsertBatch in
// 1024-record batches: one write lock and one Sync per batch. ns/op is
// still per record, so it divides directly against BenchmarkFileInsertSync.
func BenchmarkFileInsertBatch(b *testing.B) {
	const batchSize = 1024
	ix := newFileBenchIndex(b)
	defer ix.Close()
	batch := make([]KV, 0, batchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := uint64(i) + 1
		batch = append(batch, KV{Key: benchKey(v), Value: v})
		if len(batch) == batchSize {
			if _, err := ix.InsertBatch(batch); err != nil {
				b.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if _, err := ix.InsertBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFileBulkLoad streams the same records through the bottom-up
// bulk builder: sort by pseudo-key, carve full pages sequentially, build
// the directory above them, one commit. ns/op is per record, directly
// comparable to BenchmarkFileInsertBatch.
func BenchmarkFileBulkLoad(b *testing.B) {
	ix := newFileBenchIndex(b)
	defer ix.Close()
	b.ReportAllocs()
	b.ResetTimer()
	i := uint64(0)
	n := uint64(b.N)
	_, err := ix.BulkLoad(func() (KV, bool, error) {
		if i >= n {
			return KV{}, false, nil
		}
		i++
		return KV{Key: benchKey(i), Value: i}, true, nil
	}, BulkOptions{})
	if err != nil {
		b.Fatal(err)
	}
}
