package bmeh_test

import (
	"testing"

	"bmeh"
)

// TestNoAliasedResults locks in the ownership contract the serving layer
// depends on: keys handed to a Range callback are defensive copies, not
// aliases of the index's pooled descent buffers, and the index never
// retains a reference to a caller's key slice. A violation here shows up
// remotely as one client's response bytes changing under another's
// request — so this is tier-1, not just hygiene.
func TestNoAliasedResults(t *testing.T) {
	ix, err := bmeh.New(bmeh.Options{Dims: 2, PageCapacity: 4, CacheFrames: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	const n = 500
	keyOf := func(i int) bmeh.Key { return bmeh.Key{uint64(i), uint64(i * 3 % 251)} }
	for i := 0; i < n; i++ {
		k := keyOf(i)
		if err := ix.Insert(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
		// The index must have copied/encoded k by now: trashing the
		// caller's slice must not corrupt the stored record.
		k[0], k[1] = ^uint64(0), ^uint64(0)
	}

	// Collect every key from a full-box Range, retaining the slices.
	lo := bmeh.Key{0, 0}
	hi := bmeh.Key{ix.MaxComponent(), ix.MaxComponent()}
	var keys []bmeh.Key
	vals := map[uint64]bool{}
	err = ix.Range(lo, hi, func(k bmeh.Key, v uint64) bool {
		keys = append(keys, k) // retained past the callback
		vals[v] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != n {
		t.Fatalf("range returned %d keys, want %d", len(keys), n)
	}
	for i := 0; i < n; i++ {
		if !vals[uint64(i)] {
			t.Fatalf("value %d missing from range", i)
		}
	}

	// Trash every retained key. If any aliased a pooled buffer still in
	// use, the index (or a later query) would see the garbage.
	for _, k := range keys {
		for j := range k {
			k[j] = ^uint64(0)
		}
	}

	// Everything must still be intact and findable.
	for i := 0; i < n; i++ {
		v, ok, err := ix.Get(keyOf(i))
		if err != nil || !ok || v != uint64(i) {
			t.Fatalf("get %d after mutating range results: %d %v %v", i, v, ok, err)
		}
	}
	count := 0
	err = ix.Range(lo, hi, func(k bmeh.Key, v uint64) bool {
		// Each callback key must be freshly owned: equal to a real key,
		// not the garbage we wrote above.
		if k[0] == ^uint64(0) {
			t.Fatalf("range callback key aliases a previously returned slice")
		}
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("second range returned %d keys, want %d", count, n)
	}
	if err := ix.Validate(); err != nil {
		t.Fatalf("index invariants after mutation probes: %v", err)
	}
}

// TestNoAliasedResultsInterleaved mutates range results while a second
// range over the same pages is mid-flight — the sharpest version of the
// aliasing hazard, since both descents draw from the same buffer pools.
func TestNoAliasedResultsInterleaved(t *testing.T) {
	ix, err := bmeh.New(bmeh.Options{Dims: 2, PageCapacity: 4, CacheFrames: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	const n = 200
	for i := 0; i < n; i++ {
		if err := ix.Insert(bmeh.Key{uint64(i), uint64(i)}, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	lo := bmeh.Key{0, 0}
	hi := bmeh.Key{ix.MaxComponent(), ix.MaxComponent()}
	outer := 0
	err = ix.Range(lo, hi, func(ok bmeh.Key, ov uint64) bool {
		outer++
		if ov%50 != 0 {
			ok[0] = ^uint64(0) // trash it mid-iteration
			return true
		}
		inner := 0
		if err := ix.Range(lo, hi, func(ik bmeh.Key, iv uint64) bool {
			if ik[0] == ^uint64(0) {
				t.Fatalf("inner range observed outer callback's mutation")
			}
			ik[1] = ^uint64(0)
			inner++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if inner != n {
			t.Fatalf("inner range saw %d keys, want %d", inner, n)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if outer != n {
		t.Fatalf("outer range saw %d keys, want %d", outer, n)
	}
}
