package bmeh

// Mixed-workload stress for the latch-crabbing write path: many inserters,
// dedicated deleters racing them over the same keys, point readers and box
// scanners, all concurrent on one index over both backends. Run under
// -race in CI. Correctness here means no detector report, no invariant
// violation at any Validate, and an exact final membership check: every
// key the deleters claimed is gone, every other acknowledged insert is
// retrievable.

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestMixedWorkloadStress(t *testing.T) {
	for _, backend := range []string{"mem", "file"} {
		t.Run(backend, func(t *testing.T) {
			ix := stressIndex(t, backend)
			defer ix.Close()

			const (
				writers   = 4
				deleters  = 2
				readers   = 3
				perWriter = 300
				spacing   = 1 << 20 // disjoint key ranges per writer
			)
			for i := 0; i < 100; i++ {
				if err := ix.Insert(benchKey(uint64(i)), uint64(i)); err != nil {
					t.Fatal(err)
				}
			}

			var wg, writerWG sync.WaitGroup
			errs := make(chan error, writers+deleters+readers+2)
			stop := make(chan struct{})
			// Inserted keys stream to the deleters, so deletes race the
			// splits and merges of later inserts in the same subtree.
			feed := make(chan uint64, 256)

			for w := 0; w < writers; w++ {
				wg.Add(1)
				writerWG.Add(1)
				go func(w int) {
					defer wg.Done()
					defer writerWG.Done()
					base := uint64((w + 1) * spacing)
					for i := 0; i < perWriter; i++ {
						id := base + uint64(i)
						if err := ix.Insert(benchKey(id), id); err != nil {
							errs <- fmt.Errorf("writer %d insert %d: %w", w, i, err)
							return
						}
						feed <- id
					}
				}(w)
			}

			// Deleters remove every even key they receive; odd keys must
			// survive to the end.
			deleted := make([]map[uint64]bool, deleters)
			var delWG sync.WaitGroup
			for d := 0; d < deleters; d++ {
				deleted[d] = make(map[uint64]bool)
				wg.Add(1)
				delWG.Add(1)
				go func(d int) {
					defer wg.Done()
					defer delWG.Done()
					for id := range feed {
						if id%2 != 0 {
							continue
						}
						ok, err := ix.Delete(benchKey(id))
						if err != nil {
							errs <- fmt.Errorf("deleter %d delete %d: %w", d, id, err)
							return
						}
						if !ok {
							errs <- fmt.Errorf("deleter %d: acknowledged key %d already missing", d, id)
							return
						}
						deleted[d][id] = true
					}
				}(d)
			}

			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					i := uint64(r)
					for {
						select {
						case <-stop:
							return
						default:
						}
						i++
						id := mix64(i) % 100
						v, ok, err := ix.Get(benchKey(id))
						if err != nil {
							errs <- fmt.Errorf("reader %d get: %w", r, err)
							return
						}
						if !ok || v != id {
							errs <- fmt.Errorf("reader %d: stable key %d returned ok=%v v=%d", r, id, ok, v)
							return
						}
						if i%256 == 0 {
							// Full-space scan: the 100 stable preload keys
							// (values 0..99; churned keys carry values ≥
							// 2^20) must each be seen exactly once.
							hi := ix.MaxComponent()
							seen := 0
							if err := ix.Range(Key{0, 0}, Key{hi, hi}, func(k Key, v uint64) bool {
								if v < 100 {
									seen++
								}
								return true
							}); err != nil {
								errs <- fmt.Errorf("reader %d range: %w", r, err)
								return
							}
							if seen != 100 {
								errs <- fmt.Errorf("reader %d: scan saw %d of 100 stable keys", r, seen)
								return
							}
						}
					}
				}(r)
			}

			// Validator and syncer race the writers too.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					case <-time.After(2 * time.Millisecond):
						if err := ix.Validate(); err != nil {
							errs <- fmt.Errorf("validate: %w", err)
							return
						}
						if err := ix.Sync(); err != nil {
							errs <- fmt.Errorf("sync: %w", err)
							return
						}
					}
				}
			}()

			go func() { writerWG.Wait(); close(feed) }()
			go func() { delWG.Wait(); close(stop) }()
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(2 * time.Minute):
				t.Fatal("stress test wedged")
			}
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			if err := ix.Validate(); err != nil {
				t.Fatal(err)
			}
			gone := make(map[uint64]bool)
			for d := range deleted {
				for id := range deleted[d] {
					gone[id] = true
				}
			}
			for w := 0; w < writers; w++ {
				base := uint64((w + 1) * spacing)
				for i := 0; i < perWriter; i++ {
					id := base + uint64(i)
					v, ok, err := ix.Get(benchKey(id))
					if err != nil {
						t.Fatal(err)
					}
					switch {
					case gone[id] && ok:
						t.Fatalf("deleted key %d resurrected (v=%d)", id, v)
					case !gone[id] && (!ok || v != id):
						t.Fatalf("key %d lost (ok=%v v=%d)", id, ok, v)
					}
				}
			}
			want := 100 + writers*perWriter - len(gone)
			if got := ix.Len(); got != want {
				t.Fatalf("Len() = %d after the dust settled, want %d", got, want)
			}
		})
	}
}
