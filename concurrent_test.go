package bmeh

// Parallel stress tests for the concurrent read path: readers, writers, a
// periodic group-committing Sync and a structural Validate all race on one
// index. Run under -race in CI; correctness here means no detector report,
// no structural invariant violation, and every acknowledged insert
// retrievable at the end.

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func stressIndex(t *testing.T, backend string) *Index {
	t.Helper()
	opts := Options{
		Dims:         2,
		PageCapacity: 8,
		CacheFrames:  128,
		SyncPolicy:   SyncPolicy{Interval: 200 * time.Microsecond, MaxBatch: 8},
	}
	switch backend {
	case "mem":
		ix, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		return ix
	case "file":
		ix, err := Create(filepath.Join(t.TempDir(), "stress.bmeh"), opts)
		if err != nil {
			t.Fatal(err)
		}
		return ix
	default:
		t.Fatalf("unknown backend %q", backend)
		return nil
	}
}

func TestParallelStress(t *testing.T) {
	for _, backend := range []string{"mem", "file"} {
		t.Run(backend, func(t *testing.T) {
			ix := stressIndex(t, backend)
			defer ix.Close()

			const (
				writers      = 2
				readers      = 4
				perWriter    = 400
				keySpaceSkip = 1 << 20 // disjoint key ranges per writer
			)
			// Preload so readers have something to find from the start.
			for i := 0; i < 200; i++ {
				if err := ix.Insert(benchKey(uint64(i)), uint64(i)); err != nil {
					t.Fatal(err)
				}
			}

			var wg, writerWG sync.WaitGroup
			errs := make(chan error, writers+readers+2)
			stop := make(chan struct{})

			// Writers: insert a private key range, deleting every third key
			// again, syncing occasionally from inside the writer too.
			for w := 0; w < writers; w++ {
				wg.Add(1)
				writerWG.Add(1)
				go func(w int) {
					defer wg.Done()
					defer writerWG.Done()
					base := uint64((w + 1) * keySpaceSkip)
					for i := 0; i < perWriter; i++ {
						id := base + uint64(i)
						if err := ix.Insert(benchKey(id), id); err != nil {
							errs <- fmt.Errorf("writer %d insert %d: %w", w, i, err)
							return
						}
						if i%3 == 2 {
							if _, err := ix.Delete(benchKey(base + uint64(i-2))); err != nil {
								errs <- fmt.Errorf("writer %d delete %d: %w", w, i-2, err)
								return
							}
						}
						if i%64 == 63 {
							if err := ix.Sync(); err != nil {
								errs <- fmt.Errorf("writer %d sync: %w", w, err)
								return
							}
						}
					}
				}(w)
			}

			// Readers: hammer Gets over the preloaded range and run the
			// occasional box query; values must always be consistent.
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					i := uint64(r)
					for {
						select {
						case <-stop:
							return
						default:
						}
						i++
						id := mix64(i) % 200
						v, ok, err := ix.Get(benchKey(id))
						if err != nil {
							errs <- fmt.Errorf("reader %d get: %w", r, err)
							return
						}
						if ok && v != id {
							errs <- fmt.Errorf("reader %d: key %d returned value %d", r, id, v)
							return
						}
						if i%512 == 0 {
							hi := ix.MaxComponent()
							if err := ix.Range(Key{0, 0}, Key{hi, hi}, func(Key, uint64) bool { return true }); err != nil {
								errs <- fmt.Errorf("reader %d range: %w", r, err)
								return
							}
						}
					}
				}(r)
			}

			// Syncer: periodic group-committed Syncs concurrent with
			// everything else.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					case <-time.After(500 * time.Microsecond):
						if err := ix.Sync(); err != nil {
							errs <- fmt.Errorf("syncer: %w", err)
							return
						}
					}
				}
			}()

			// Validator: structural invariants must hold at every quiescent
			// point a read lock can observe.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					case <-time.After(5 * time.Millisecond):
						if err := ix.Validate(); err != nil {
							errs <- fmt.Errorf("validate: %w", err)
							return
						}
					}
				}
			}()

			// Writers are the finite goroutines: once they drain (or bail
			// with an error), wind down the background loops.
			go func() { writerWG.Wait(); close(stop) }()
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(2 * time.Minute):
				t.Fatal("stress test wedged")
			}
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			// Post-conditions: every acknowledged key present, structure valid.
			if err := ix.Validate(); err != nil {
				t.Fatal(err)
			}
			for w := 0; w < writers; w++ {
				base := uint64((w + 1) * keySpaceSkip)
				for i := 0; i < perWriter; i++ {
					id := base + uint64(i)
					deleted := i%3 == 0 && i+2 < perWriter
					v, ok, err := ix.Get(benchKey(id))
					if err != nil {
						t.Fatal(err)
					}
					if deleted && ok {
						t.Fatalf("writer %d key %d: deleted key resurrected", w, i)
					}
					if !deleted && (!ok || v != id) {
						t.Fatalf("writer %d key %d: lost (ok=%v v=%d)", w, i, ok, v)
					}
				}
			}
			if err := ix.Sync(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
