package bmeh

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"

	"bmeh/internal/core"
	"bmeh/internal/pagestore"
)

// This file is the index-level replication surface. A primary exposes its
// commit stream (SetReplPublisher, ReplSnapshot); a replica applies it
// (ApplyReplSegment, ApplyReplSnapshot), rebuilding its in-memory view
// from the replicated header after every batch so reads always observe a
// committed state. ReplicaTarget wraps the bootstrap dance: a replica
// whose local file does not exist yet is created from the first snapshot.

// ErrNotReplicable reports a replication call against an in-memory index.
var ErrNotReplicable = errors.New("bmeh: in-memory index cannot replicate")

// ReplCommitSeq returns the sequence number of the store's last durable
// commit (0 for an in-memory index).
func (ix *Index) ReplCommitSeq() uint64 {
	if ix.file == nil {
		return 0
	}
	return ix.file.CommitSeq()
}

// ReplPageSize returns the store's page size.
func (ix *Index) ReplPageSize() int { return ix.store.PageSize() }

// SetReplPublisher installs fn as the store's commit observer: after
// every durable commit fn receives the batch's sequence number and
// frames, in commit order, after the WAL checkpoint barrier. Install a
// repl.Hub's Publish here. fn runs under the store lock and must not
// block or call back into the index. A nil fn uninstalls the publisher.
func (ix *Index) SetReplPublisher(fn func(seq uint64, frames []pagestore.Frame)) error {
	if ix.file == nil {
		return ErrNotReplicable
	}
	ix.file.SetCommitHook(fn)
	return nil
}

// ReplSnapshot streams a consistent full-store image to fn and returns
// the commit sequence and page count it belongs to. The index is synced
// first — decoded nodes, cached frames and the header all reach the store
// — so the image is exactly what a fresh Open of the file would see. The
// index is locked exclusively for the duration: the snapshot is a
// consistent cut of the commit stream.
func (ix *Index) ReplSnapshot(fn func(id pagestore.PageID, kind pagestore.Kind, data []byte) error) (seq uint64, pageCount uint32, err error) {
	ix.mu.Lock()
	if ix.closed {
		ix.mu.Unlock()
		return 0, 0, pagestore.ErrClosed
	}
	if ix.file == nil {
		ix.mu.Unlock()
		return 0, 0, ErrNotReplicable
	}
	// Under WriteModeCOW the exclusive hold shrinks to the flush + meta
	// staging: a pinned tree snapshot keeps every page the staged header
	// references alive until the store-level stream (itself atomic under
	// the store lock) has committed and copied them, so the page loop runs
	// without ix.mu held exclusively and index reads proceed throughout.
	// Writers committing between the pin and the stream only ADD pages:
	// those are unreachable from the staged root and will be repaired on
	// the subscriber by the very segments the hub queued during the
	// snapshot, exactly as the latched path's post-snapshot commits are.
	if tr, ok := ix.idx.(*core.Tree); ok && tr.COWEnabled() {
		snap, err := tr.Snapshot()
		if err == nil {
			err = tr.FlushDirtyPages()
		}
		if err == nil && ix.cached != nil {
			err = ix.cached.Flush()
		}
		if err == nil {
			var rec []byte
			if rec, err = snap.MarshalMeta(); err == nil {
				err = ix.file.WriteMeta(rec)
			}
		}
		ix.mu.Unlock()
		if err != nil {
			if snap != nil {
				snap.Close()
			}
			return 0, 0, err
		}
		seq, pageCount, err = ix.file.SnapshotPages(fn)
		if cerr := snap.Close(); err == nil && cerr != nil {
			err = cerr
		}
		return seq, pageCount, err
	}
	defer ix.mu.Unlock()
	if err := ix.syncLocked(); err != nil {
		return 0, 0, err
	}
	return ix.file.SnapshotPages(fn)
}

// ApplyReplSegment applies one replicated commit batch to a replica
// index: the batch commits through the local WAL, cached frames for the
// rewritten pages are invalidated, and the in-memory view is rebuilt from
// the replicated header. Duplicate batches are skipped; a gap fails with
// pagestore.ErrReplicaGap and the caller must resynchronize.
func (ix *Index) ApplyReplSegment(seq uint64, frames []pagestore.Frame) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed {
		return pagestore.ErrClosed
	}
	if ix.file == nil {
		return ErrNotReplicable
	}
	applied, err := ix.file.ApplyReplicated(seq, frames)
	if err != nil || !applied {
		return err
	}
	ix.dropCachedLocked(frames)
	return ix.reloadLocked()
}

// ApplyReplSnapshot replaces a replica index's contents with a full
// snapshot (same page size required) and rebuilds the in-memory view.
func (ix *Index) ApplyReplSnapshot(seq uint64, pageSize int, pageCount uint32, frames []pagestore.Frame) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed {
		return pagestore.ErrClosed
	}
	if ix.file == nil {
		return ErrNotReplicable
	}
	if pageSize != ix.file.PageSize() {
		return fmt.Errorf("bmeh: snapshot page size %d, replica page size %d", pageSize, ix.file.PageSize())
	}
	if err := ix.file.ApplySnapshot(seq, frames); err != nil {
		return err
	}
	ix.dropCachedLocked(frames)
	return ix.reloadLocked()
}

// dropCachedLocked invalidates cached frames for every page a replicated
// batch rewrote; the next read faults the committed image back in.
func (ix *Index) dropCachedLocked(frames []pagestore.Frame) {
	if ix.cached == nil {
		return
	}
	for _, fr := range frames {
		if fr.ID != pagestore.NilPage {
			ix.cached.Drop(fr.ID)
		}
	}
}

// reloadLocked rebuilds the in-memory scheme implementation from the
// store's meta record, exactly as Open would. Loading is cheap — it
// validates the header and pins the root — so a replica pays it per
// applied batch.
//
// Only ix.idx is replaced: readers access it under ix.mu.RLock, which
// the caller's write lock excludes. ix.scheme and ix.prm are read
// lock-free on hot paths (they are immutable after open), so instead of
// rewriting them with equal values — a data race — a reload verifies the
// replicated meta still agrees with them.
func (ix *Index) reloadLocked() error {
	meta := make([]byte, ix.file.PageSize())
	n, err := ix.file.ReadMeta(meta)
	if err != nil {
		return err
	}
	idx, scheme, prm, err := loadImpl(ix.store, meta[:n])
	if err != nil {
		return fmt.Errorf("bmeh: reloading replicated index: %w", err)
	}
	if scheme != ix.scheme || prm.Dims != ix.prm.Dims ||
		prm.Width != ix.prm.Width || prm.Capacity != ix.prm.Capacity {
		return fmt.Errorf("bmeh: replicated meta changed scheme or geometry (scheme %d→%d, d %d→%d, w %d→%d, b %d→%d)",
			ix.scheme, scheme, ix.prm.Dims, prm.Dims, ix.prm.Width, prm.Width, ix.prm.Capacity, prm.Capacity)
	}
	ix.idx = idx
	return nil
}

// ReplicaTarget adapts a local index file to the repl.Target interface,
// handling bootstrap: when the file does not exist yet, the target stays
// empty (ReplCommitSeq 0, which forces the primary to send a snapshot)
// and the file is created from that first snapshot. Ready is closed once
// an index is available to serve reads.
type ReplicaTarget struct {
	path  string
	cache int

	mu    sync.Mutex
	ix    *Index
	ready chan struct{}
}

// NewReplicaTarget opens (or defers creation of) the replica's local
// index at path. cacheFrames is passed to Open as in Options.CacheFrames.
// An existing file is opened through normal crash recovery, so a replica
// killed mid-apply resumes from its last durable batch.
func NewReplicaTarget(path string, cacheFrames int) (*ReplicaTarget, error) {
	t := &ReplicaTarget{path: path, cache: cacheFrames, ready: make(chan struct{})}
	if _, err := os.Stat(path); err == nil {
		ix, err := Open(path, cacheFrames)
		if err != nil {
			return nil, fmt.Errorf("bmeh: opening replica store (delete it to reseed): %w", err)
		}
		t.ix = ix
		close(t.ready)
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, err
	}
	return t, nil
}

// Ready is closed once the target holds an index (immediately for an
// existing file, after the first snapshot otherwise).
func (t *ReplicaTarget) Ready() <-chan struct{} { return t.ready }

// Index returns the underlying index, or nil before the first snapshot.
func (t *ReplicaTarget) Index() *Index {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ix
}

// ReplCommitSeq implements repl.Target.
func (t *ReplicaTarget) ReplCommitSeq() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ix == nil {
		return 0
	}
	return t.ix.ReplCommitSeq()
}

// ApplyReplSegment implements repl.Target.
func (t *ReplicaTarget) ApplyReplSegment(seq uint64, frames []pagestore.Frame) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ix == nil {
		return errors.New("bmeh: replica has no store yet (snapshot required)")
	}
	return t.ix.ApplyReplSegment(seq, frames)
}

// ApplyReplSnapshot implements repl.Target, creating the local file from
// the snapshot when it does not exist yet.
func (t *ReplicaTarget) ApplyReplSnapshot(seq uint64, pageSize int, pageCount uint32, frames []pagestore.Frame) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ix != nil {
		return t.ix.ApplyReplSnapshot(seq, pageSize, pageCount, frames)
	}
	fd, err := pagestore.CreateFileDisk(t.path, pageSize)
	if err != nil {
		return err
	}
	if err := fd.ApplySnapshot(seq, frames); err != nil {
		fd.Close()
		os.Remove(t.path)
		os.Remove(t.path + ".wal")
		return err
	}
	if err := fd.Close(); err != nil {
		return err
	}
	ix, err := Open(t.path, t.cache)
	if err != nil {
		return fmt.Errorf("bmeh: opening freshly seeded replica store: %w", err)
	}
	t.ix = ix
	close(t.ready)
	return nil
}

// Close releases the underlying index, if any.
func (t *ReplicaTarget) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ix == nil {
		return nil
	}
	return t.ix.Close()
}
