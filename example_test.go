package bmeh_test

import (
	"fmt"
	"log"

	"bmeh"
)

// The basic lifecycle: create an index, insert, look up, range-scan.
func Example() {
	ix, err := bmeh.New(bmeh.Options{Dims: 2, PageCapacity: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()

	for x := uint64(0); x < 8; x++ {
		for y := uint64(0); y < 8; y++ {
			if err := ix.Insert(bmeh.Key{x << 28, y << 28}, x*8+y); err != nil {
				log.Fatal(err)
			}
		}
	}

	v, found, _ := ix.Get(bmeh.Key{3 << 28, 5 << 28})
	fmt.Println("point (3,5):", v, found)

	n := 0
	_ = ix.Range(bmeh.Key{2 << 28, 2 << 28}, bmeh.Key{4 << 28, 4 << 28},
		func(k bmeh.Key, v uint64) bool { n++; return true })
	fmt.Println("3x3 box:", n, "records")
	// Output:
	// point (3,5): 29 true
	// 3x3 box: 9 records
}

// Partial-match queries constrain a subset of the dimensions and leave the
// rest unbounded, per the paper's §4.4 convention.
func ExampleUnbounded() {
	ix, err := bmeh.New(bmeh.Options{Dims: 3, PageCapacity: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()
	for i := uint64(0); i < 64; i++ {
		k := bmeh.Key{(i % 4) << 29, (i / 4 % 4) << 29, (i / 16) << 29}
		if err := ix.Insert(k, i); err != nil {
			log.Fatal(err)
		}
	}
	// Fix dimension 1 to the value 2<<29; dimensions 2 and 3 are free.
	lo, hi := bmeh.Unbounded(32)
	n := 0
	_ = ix.Range(
		bmeh.Key{2 << 29, lo, lo},
		bmeh.Key{2 << 29, hi, hi},
		func(bmeh.Key, uint64) bool { n++; return true })
	fmt.Println("partial match:", n)
	// Output:
	// partial match: 16
}

// Order-preserving encoders map typed attributes onto key components so
// that range predicates survive the mapping.
func ExampleBounded() {
	ix, err := bmeh.New(bmeh.Options{Dims: 2, PageCapacity: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()
	type site struct{ lon, lat float64 }
	sites := []site{{-0.1, 51.5}, {2.35, 48.86}, {13.4, 52.5}, {-74.0, 40.7}}
	enc := func(s site) bmeh.Key {
		return bmeh.Key{bmeh.Bounded(s.lon, -180, 180), bmeh.Bounded(s.lat, -90, 90)}
	}
	for i, s := range sites {
		if err := ix.Insert(enc(s), uint64(i)); err != nil {
			log.Fatal(err)
		}
	}
	// Bounding box roughly covering western Europe.
	n := 0
	_ = ix.Range(enc(site{-11, 35}), enc(site{25, 60}),
		func(bmeh.Key, uint64) bool { n++; return true })
	fmt.Println("European sites:", n)
	// Output:
	// European sites: 3
}

// Stats expose the paper's structural measures: σ, levels, load factor.
func ExampleIndex_Stats() {
	ix, err := bmeh.New(bmeh.Options{Dims: 2, PageCapacity: 4, NodeBits: []int{2, 2}})
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()
	for i := uint64(0); i < 256; i++ {
		k := bmeh.Key{(i * 2654435761) % (1 << 31), (i * 40503) % (1 << 31)}
		if err := ix.Insert(k, i); err != nil {
			log.Fatal(err)
		}
	}
	st := ix.Stats()
	fmt.Println("records:", st.Records)
	fmt.Println("balanced levels ≥ 2:", st.DirectoryLevels >= 2)
	fmt.Println("load factor in (0.4, 1]:", st.LoadFactor > 0.4 && st.LoadFactor <= 1)
	// Output:
	// records: 256
	// balanced levels ≥ 2: true
	// load factor in (0.4, 1]: true
}
