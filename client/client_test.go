package client_test

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"bmeh"
	"bmeh/client"
	"bmeh/internal/server"
	"bmeh/internal/wire"
)

func newServer(t *testing.T) (*server.Server, *bmeh.Index, string, chan error) {
	t.Helper()
	ix, err := bmeh.New(bmeh.Options{Dims: 2, CacheFrames: 256})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	srv := server.New(ix, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-done
	})
	return srv, ix, ln.Addr().String(), done
}

func TestDialFailure(t *testing.T) {
	// A port nothing listens on: Dial must fail fast with a *ConnError.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	var ce *client.ConnError
	if _, err := client.Dial(addr, client.Options{DialTimeout: 2 * time.Second}); !errors.As(err, &ce) {
		t.Fatalf("dial to closed port: %v", err)
	}
}

// flakyListener accepts connections; the first `drops` of them are torn
// down right after the first request frame arrives (the classic
// restart-under-load shape), later ones answer every GET with NotFound
// and every PUT with OK.
func flakyListener(t *testing.T, drops int) (addr string, accepted *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	accepted = new(atomic.Int64)
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			n := accepted.Add(1)
			go func(nc net.Conn, kill bool) {
				defer nc.Close()
				r := wire.NewReader(bufio.NewReader(nc), 0)
				for {
					fr, err := r.Next()
					if err != nil {
						return
					}
					if kill {
						return // connection dies with the request unanswered
					}
					var st wire.Status
					switch fr.Op {
					case wire.OpGet:
						st = wire.StatusNotFound
					default:
						st = wire.StatusOK
					}
					resp := wire.AppendFrame(nil, wire.Frame{
						Op: fr.Op.Response(), ID: fr.ID,
						Payload: wire.AppendStatus(nil, st, ""),
					})
					if _, err := nc.Write(resp); err != nil {
						return
					}
				}
			}(nc, int(n) <= drops)
		}
	}()
	return ln.Addr().String(), accepted
}

// TestRetryIdempotentOnly: a GET whose connection dies mid-flight is
// retried on a fresh connection; a PUT in the same situation is not —
// the caller gets the *ConnError and owns the ambiguity.
func TestRetryIdempotentOnly(t *testing.T) {
	addr, accepted := flakyListener(t, 1)
	cl, err := client.Dial(addr, client.Options{
		PoolSize: 1, Retries: 2, RequestTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Conn 1 dies on the GET; the retry dials conn 2 and succeeds.
	if _, ok, err := cl.Get(bmeh.Key{1, 2}); err != nil || ok {
		t.Fatalf("retried get: ok=%v err=%v", ok, err)
	}
	if got := accepted.Load(); got != 2 {
		t.Fatalf("connections used for retried GET: %d, want 2", got)
	}

	// Fresh flaky endpoint: the PUT must NOT be retried.
	addr, accepted = flakyListener(t, 1)
	cl2, err := client.Dial(addr, client.Options{
		PoolSize: 1, Retries: 2, RequestTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	var ce *client.ConnError
	if err := cl2.Put(bmeh.Key{1, 2}, 7); !errors.As(err, &ce) {
		t.Fatalf("put on dying conn: %v", err)
	}
	if got := accepted.Load(); got != 1 {
		t.Fatalf("connections used for failed PUT: %d, want 1 (no retry)", got)
	}
	// The pool recovers for the next idempotent call.
	if _, _, err := cl2.Get(bmeh.Key{1, 2}); err != nil {
		t.Fatalf("get after failed put: %v", err)
	}
}

// TestRequestTimeout: a server that accepts but never answers trips the
// per-request deadline; the failure is a retryable *ConnError and the
// configured retries are consumed.
func TestRequestTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var accepted atomic.Int64
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			accepted.Add(1)
			// Swallow bytes, never respond.
			go func(nc net.Conn) {
				defer nc.Close()
				buf := make([]byte, 4096)
				for {
					if _, err := nc.Read(buf); err != nil {
						return
					}
				}
			}(nc)
		}
	}()
	cl, err := client.Dial(ln.Addr().String(), client.Options{
		PoolSize: 1, Retries: 1, RequestTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	start := time.Now()
	_, _, err = cl.Get(bmeh.Key{1, 2})
	var ce *client.ConnError
	if !errors.As(err, &ce) {
		t.Fatalf("silent server: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
	if got := accepted.Load(); got != 2 {
		t.Fatalf("attempts against silent server: %d, want 2 (1 + 1 retry)", got)
	}
}

// TestServerRestartMidPipeline: a pipeline of async calls is severed by
// a forced server stop; every call completes (no hangs), the client
// redials after the server returns, and idempotent sync calls succeed
// again.
func TestServerRestartMidPipeline(t *testing.T) {
	ix, err := bmeh.New(bmeh.Options{Dims: 2, CacheFrames: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv := server.New(ix, server.Config{})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	cl, err := client.Dial(addr, client.Options{
		PoolSize: 1, Retries: 3, RequestTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Put(bmeh.Key{0, 0}, 42); err != nil {
		t.Fatal(err)
	}

	// Pipeline a burst, then yank the server with an already-expired
	// context (forced close, no drain courtesy).
	calls := make([]*client.Call, 200)
	for i := range calls {
		if i%2 == 0 {
			calls[i] = cl.PutAsync(bmeh.Key{uint64(i + 1), 1}, uint64(i))
		} else {
			calls[i] = cl.GetAsync(bmeh.Key{0, 0})
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	srv.Shutdown(ctx)
	<-done

	succeeded, failed := 0, 0
	deadline := time.After(10 * time.Second)
	for _, call := range calls {
		select {
		case <-call.Done():
		case <-deadline:
			t.Fatal("async call hung across server restart")
		}
		if call.Err != nil {
			var ce *client.ConnError
			var re client.RemoteError
			if !errors.As(call.Err, &ce) && !errors.As(call.Err, &re) {
				t.Fatalf("unexpected error kind: %v", call.Err)
			}
			failed++
		} else {
			succeeded++
		}
	}
	t.Logf("across restart: %d completed, %d failed", succeeded, failed)

	// Restart on the same address; the pool redials transparently for
	// the next (retryable) call.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("relisten: %v", err)
	}
	srv2 := server.New(ix, server.Config{})
	done2 := make(chan error, 1)
	go func() { done2 <- srv2.Serve(ln2) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv2.Shutdown(ctx)
		<-done2
	}()

	v, ok, err := cl.Get(bmeh.Key{0, 0})
	if err != nil || !ok || v != 42 {
		t.Fatalf("get after restart: %d %v %v", v, ok, err)
	}
}

func TestClientClosed(t *testing.T) {
	_, _, addr, _ := newServer(t)
	cl, err := client.Dial(addr, client.Options{PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	if _, _, err := cl.Get(bmeh.Key{1, 2}); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("get on closed client: %v", err)
	}
}

// TestAsyncPipelineDepth: one goroutine keeps many GETs in flight and
// they all come back correct — the pipelined happy path.
func TestAsyncPipelineDepth(t *testing.T) {
	_, ix, addr, _ := newServer(t)
	for i := 0; i < 512; i++ {
		if err := ix.Insert(bmeh.Key{uint64(i), uint64(i)}, uint64(i*3)); err != nil {
			t.Fatal(err)
		}
	}
	cl, err := client.Dial(addr, client.Options{PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	calls := make([]*client.Call, 512)
	for i := range calls {
		calls[i] = cl.GetAsync(bmeh.Key{uint64(i), uint64(i)})
	}
	for i, call := range calls {
		if err := call.Wait(); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if !call.Found || call.Value != uint64(i*3) {
			t.Fatalf("get %d: found=%v value=%d", i, call.Found, call.Value)
		}
	}
}
