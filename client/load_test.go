package client_test

import (
	"bufio"
	"errors"
	"net"
	"testing"
	"time"

	"bmeh"
	"bmeh/client"
	"bmeh/internal/wire"
)

// startCommitKillServer speaks just enough of the wire protocol to
// carry a load stream to its commit: LOAD_BEGIN opens session 1, chunks
// are acked, and the first LOAD_COMMIT kills both the connection and the
// listener — so the commit's fate is unknowable and every resume redial
// fails.
func startCommitKillServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				r := wire.NewReader(bufio.NewReader(nc), 0)
				for {
					fr, err := r.Next()
					if err != nil {
						return
					}
					var resp []byte
					switch fr.Op {
					case wire.OpLoadBegin:
						resp = wire.AppendLoadBeginResp(nil, 1, 1)
					case wire.OpLoadChunk:
						_, seq, _, err := wire.DecodeLoadChunkReq(fr.Payload)
						if err != nil {
							return
						}
						resp = wire.AppendLoadChunkResp(nil, seq)
					case wire.OpLoadCommit:
						ln.Close()
						return
					default:
						resp = wire.AppendStatus(nil, wire.StatusOK, "")
					}
					out := wire.AppendFrame(nil, wire.Frame{
						Op: fr.Op.Response(), ID: fr.ID, Payload: resp,
					})
					if _, err := nc.Write(out); err != nil {
						return
					}
				}
			}(nc)
		}
	}()
	return ln.Addr().String()
}

// TestLoadCommitAmbiguousOnRedialFailure: once the commit frame is on
// the wire, losing the connection and then failing every resume redial
// must surface ErrLoadAmbiguous — the commit may have landed server-side,
// so a bare transport error would break the "surfaced, never guessed"
// contract.
func TestLoadCommitAmbiguousOnRedialFailure(t *testing.T) {
	addr := startCommitKillServer(t)
	cl, err := client.Dial(addr, client.Options{
		Retries:          2,
		DialTimeout:      time.Second,
		RequestTimeout:   2 * time.Second,
		RedialBackoff:    time.Millisecond,
		RedialBackoffMax: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	i := uint64(0)
	_, err = cl.Load(func() (bmeh.KV, bool, error) {
		if i >= 100 {
			return bmeh.KV{}, false, nil
		}
		i++
		return bmeh.KV{Key: bmeh.Key{i, i}, Value: i}, true, nil
	}, client.LoadOptions{ChunkSize: 32})
	if !errors.Is(err, client.ErrLoadAmbiguous) {
		t.Fatalf("want ErrLoadAmbiguous, got %v", err)
	}
}
