package client

import (
	"errors"
	"fmt"
	"net"
	"time"

	"bmeh"
	"bmeh/internal/wire"
)

// LoadOptions tunes Client.Load.
type LoadOptions struct {
	// ChunkSize is how many records travel in one LOAD_CHUNK frame
	// (default 1024).
	ChunkSize int
	// Window is how many chunks may be in flight unacknowledged
	// (default 8). Together with the server's bounded intake queue this
	// is the stream's end-to-end backpressure: a slow builder stalls the
	// sender instead of buffering without bound.
	Window int
	// CommitTimeout bounds the LOAD_COMMIT round trip — the server
	// answers it only after the whole sort-and-build finishes and the
	// root swap is durable, so it needs far more headroom than an
	// ordinary request (default 5m).
	CommitTimeout time.Duration
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.ChunkSize <= 0 {
		o.ChunkSize = 1024
	}
	if o.Window <= 0 {
		o.Window = 8
	}
	if o.CommitTimeout <= 0 {
		o.CommitTimeout = 5 * time.Minute
	}
	return o
}

// LoadStats reports what a Load did.
type LoadStats struct {
	// Loaded and Duplicates are the server's commit totals: records
	// stored, and records dropped because their key was already present.
	Loaded     uint64
	Duplicates uint64
	// Chunks is how many distinct chunks were acknowledged; Resumes how
	// many times the stream survived a connection loss by resuming its
	// server-side session.
	Chunks  uint64
	Resumes int
}

// ErrLoadAmbiguous reports a connection loss after LOAD_COMMIT was sent
// that resuming could not resolve — the session was gone on reconnect,
// or every redial failed: the load either committed fully or was
// reclaimed, and the caller must check the index to learn which.
// Nothing partial was kept either way.
var ErrLoadAmbiguous = errors.New("client: load commit outcome unknown")

// outChunk is one sent-but-unacknowledged chunk. The encoded payload is
// kept so a resume can retransmit it verbatim.
type outChunk struct {
	seq     uint64
	payload []byte
	call    *Call
}

// Load streams every record the iterator yields to the primary's bulk
// loader: LOAD_BEGIN opens a server-side session, records travel in
// CRC-guarded chunks with at most Window outstanding, and LOAD_COMMIT
// returns once the server's bottom-up build is durably committed — one
// atomic root swap, so a crash or an abort leaves the pre-load index,
// never a partial one.
//
// The stream rides a dedicated connection outside the request pool. If
// that connection dies mid-stream the client redials, resumes the
// session by ID, learns which chunks the server already consumed, and
// retransmits only the rest; the iterator is never rewound. next returns
// one record per call and ok=false at end of stream; an iterator error
// aborts the session server-side and is returned.
func (c *Client) Load(next func() (bmeh.KV, bool, error), opts LoadOptions) (LoadStats, error) {
	opts = opts.withDefaults()
	var stats LoadStats
	if c.closed.Load() {
		return stats, ErrClosed
	}

	cn, err := c.dialDirect()
	if err != nil {
		return stats, err
	}
	defer func() { cn.fail(&ConnError{Err: ErrClosed}) }()

	begin := cn.send(wire.OpLoadBegin, wire.AppendLoadBeginReq(nil, 0), c.opts.RequestTimeout)
	if err := begin.Wait(); err != nil {
		return stats, err
	}
	session := begin.Session

	// resume redials and re-opens the session after a transport failure,
	// retransmitting whatever the server has not consumed. It returns the
	// surviving window (acknowledged entries dropped, the rest re-sent on
	// the new connection).
	resume := func(window []outChunk) ([]outChunk, error) {
		cn.fail(&ConnError{Err: errors.New("resuming load session")})
		var lastErr error
		for attempt := 0; attempt <= c.opts.Retries; attempt++ {
			if attempt > 0 {
				time.Sleep(backoffDelay(c.opts.RedialBackoff, c.opts.RedialBackoffMax, attempt))
			}
			nc, err := c.dialDirect()
			if err != nil {
				lastErr = err
				continue
			}
			begin := nc.send(wire.OpLoadBegin, wire.AppendLoadBeginReq(nil, session), c.opts.RequestTimeout)
			if err := begin.Wait(); err != nil {
				nc.fail(&ConnError{Err: ErrClosed})
				lastErr = err
				var ce *ConnError
				if errors.As(err, &ce) {
					continue
				}
				return window, err // the session is gone server-side
			}
			cn = nc
			stats.Resumes++
			// Drop chunks the server already consumed, retransmit the rest.
			kept := window[:0]
			for _, oc := range window {
				if oc.seq < begin.NextSeq {
					stats.Chunks++
					continue
				}
				oc.call = cn.send(wire.OpLoadChunk, oc.payload, opts.CommitTimeout)
				kept = append(kept, oc)
			}
			return kept, nil
		}
		return window, lastErr
	}

	// waitOldest blocks on the window's head; on a transport failure it
	// resumes the session and blocks on the (possibly retransmitted) head
	// again.
	var window []outChunk
	waitOldest := func() error {
		for {
			oc := window[0]
			err := oc.call.Wait()
			if err == nil {
				stats.Chunks++
				window = window[1:]
				return nil
			}
			var ce *ConnError
			if !errors.As(err, &ce) {
				return err // server refused the chunk; not recoverable
			}
			if window, err = resume(window); err != nil {
				return err
			}
			if len(window) == 0 {
				return nil
			}
		}
	}

	abort := func() {
		// Best effort: free the server-side session right away rather
		// than waiting for its idle expiry.
		if !cn.broken() {
			ab := cn.send(wire.OpLoadAbort, wire.AppendLoadAbortReq(nil, session), c.opts.RequestTimeout)
			ab.Wait()
		}
	}

	batch := make([]wire.KV, 0, opts.ChunkSize)
	seq := uint64(1)
	sendBatch := func() error {
		payload := wire.AppendLoadChunkReq(nil, session, seq, batch)
		for len(window) >= opts.Window {
			if err := waitOldest(); err != nil {
				return err
			}
		}
		// Chunk sends use the commit timeout: a full server-side queue
		// legitimately stalls the stream (that is the backpressure), and a
		// dead connection fails fast through the read loop regardless.
		window = append(window, outChunk{
			seq:     seq,
			payload: payload,
			call:    cn.send(wire.OpLoadChunk, payload, opts.CommitTimeout),
		})
		seq++
		batch = batch[:0]
		return nil
	}

	for {
		kv, ok, err := next()
		if err != nil {
			abort()
			return stats, fmt.Errorf("client: load iterator: %w", err)
		}
		if !ok {
			break
		}
		// The key must be copied: the iterator may reuse its backing array.
		key := make([]uint64, len(kv.Key))
		copy(key, kv.Key)
		batch = append(batch, wire.KV{Key: key, Value: kv.Value})
		if len(batch) == opts.ChunkSize {
			if err := sendBatch(); err != nil {
				abort()
				return stats, err
			}
		}
	}
	if len(batch) > 0 {
		if err := sendBatch(); err != nil {
			abort()
			return stats, err
		}
	}
	for len(window) > 0 {
		if err := waitOldest(); err != nil {
			abort()
			return stats, err
		}
	}

	// Everything is consumed server-side; commit. A transport failure
	// here is retried through resume — the server tolerates a repeated
	// commit on a session it is still building. If the session is gone on
	// reconnect the outcome is ambiguous (the commit may have landed);
	// that is surfaced, never guessed.
	for {
		commit := cn.send(wire.OpLoadCommit, wire.AppendLoadCommitReq(nil, session), opts.CommitTimeout)
		err := commit.Wait()
		if err == nil {
			stats.Loaded = commit.Loaded
			stats.Duplicates = commit.Duplicates
			return stats, nil
		}
		var ce *ConnError
		if !errors.As(err, &ce) {
			return stats, err
		}
		// The commit frame was already sent, so any terminal resume
		// failure — session gone server-side or every redial exhausted —
		// leaves the outcome unknown: the commit may have landed. Always
		// ambiguous from here, never a bare transport error.
		var rerr error
		if window, rerr = resume(window); rerr != nil {
			return stats, fmt.Errorf("%w: %v", ErrLoadAmbiguous, rerr)
		}
	}
}

// dialDirect opens one dedicated connection to the primary, outside the
// request pool — a load stream should neither hold a pool slot for its
// whole run nor have its backpressure stalls interleave with regular
// traffic.
func (c *Client) dialDirect() (*netConn, error) {
	e := c.primary
	if e.gated() {
		e.mu.Lock()
		err := e.lastErr
		e.mu.Unlock()
		return nil, &ConnError{Err: fmt.Errorf("%w: %v", ErrPrimaryDown, err)}
	}
	e.dials.Add(1)
	nc, err := net.DialTimeout("tcp", e.addr, c.opts.DialTimeout)
	if err != nil {
		e.mu.Lock()
		e.fails++
		e.lastErr = err
		e.nextDial = time.Now().Add(backoffDelay(c.opts.RedialBackoff, c.opts.RedialBackoffMax, e.fails))
		e.mu.Unlock()
		return nil, &ConnError{Err: err}
	}
	e.mu.Lock()
	e.fails, e.lastErr, e.nextDial = 0, nil, time.Time{}
	e.mu.Unlock()
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return newNetConn(nc, c.opts.MaxPayload), nil
}
