package client_test

// Failover behaviour of the cluster client: read routing across
// replicas, redial backoff against dead nodes, staleness demotion,
// typed write failures when the primary is gone, and BUSY handling.

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bmeh"
	"bmeh/client"
	"bmeh/internal/server"
	"bmeh/internal/wire"
)

// startMemServer runs an in-memory server whose stop function is safe
// to call early (and exactly once more via cleanup is a no-op).
func startMemServer(t *testing.T, cfg server.Config) (*bmeh.Index, string, func()) {
	t.Helper()
	ix, err := bmeh.New(bmeh.Options{Dims: 2, CacheFrames: 256})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	srv := server.New(ix, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			<-done
		})
	}
	t.Cleanup(stop)
	return ix, ln.Addr().String(), stop
}

// closedPort returns an address nothing listens on.
func closedPort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestRedialBackoffGate: with a dead replica in the topology, a hot
// burst of reads must not hammer the dead node — after the first dial
// failure the endpoint is gated and reads go straight to the primary.
func TestRedialBackoffGate(t *testing.T) {
	ix, addr, _ := startMemServer(t, server.Config{})
	if err := ix.Insert(bmeh.Key{1, 2}, 7); err != nil {
		t.Fatal(err)
	}
	dead := closedPort(t)
	cl, err := client.DialCluster(addr, []string{dead}, client.Options{
		PoolSize:         1,
		Retries:          2,
		RedialBackoff:    200 * time.Millisecond,
		RedialBackoffMax: 2 * time.Second,
		HealthInterval:   -1, // keep the prober from dialing the dead node
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for i := 0; i < 200; i++ {
		v, ok, err := cl.Get(bmeh.Key{1, 2})
		if err != nil || !ok || v != 7 {
			t.Fatalf("get %d: v=%d ok=%v err=%v", i, v, ok, err)
		}
	}
	for _, h := range cl.Health() {
		if h.Addr != dead {
			continue
		}
		if h.Connected {
			t.Fatal("dead replica reported connected")
		}
		// 200 back-to-back reads finish well inside one 200ms backoff
		// window; without the gate this would be ~200 dials.
		if h.Dials > 5 {
			t.Fatalf("dead replica dialed %d times during the burst, want a handful", h.Dials)
		}
		return
	}
	t.Fatal("dead replica missing from Health()")
}

// TestAllReplicasDownReadsFallBack: reads prefer replicas, but when the
// only replica dies mid-session they must fail over to the primary with
// no caller-visible errors.
func TestAllReplicasDownReadsFallBack(t *testing.T) {
	pix, paddr, _ := startMemServer(t, server.Config{})
	rix, raddr, stopReplica := startMemServer(t, server.Config{})
	for _, ix := range []*bmeh.Index{pix, rix} {
		if err := ix.Insert(bmeh.Key{3, 4}, 11); err != nil {
			t.Fatal(err)
		}
	}
	cl, err := client.DialCluster(paddr, []string{raddr}, client.Options{
		PoolSize: 1, Retries: 3, RequestTimeout: 5 * time.Second,
		RedialBackoff: 20 * time.Millisecond, HealthInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if v, ok, err := cl.Get(bmeh.Key{3, 4}); err != nil || !ok || v != 11 {
		t.Fatalf("get with replica up: v=%d ok=%v err=%v", v, ok, err)
	}

	stopReplica() // replica gone: its connections die
	for i := 0; i < 50; i++ {
		v, ok, err := cl.Get(bmeh.Key{3, 4})
		if err != nil || !ok || v != 11 {
			t.Fatalf("get %d after replica death: v=%d ok=%v err=%v", i, v, ok, err)
		}
	}
}

// TestWritesFailFastWhenPrimaryDown: with the primary unreachable,
// writes must not hang or silently retry — they fail with
// ErrPrimaryDown while reads keep working off the replica.
func TestWritesFailFastWhenPrimaryDown(t *testing.T) {
	rix, raddr, _ := startMemServer(t, server.Config{})
	if err := rix.Insert(bmeh.Key{5, 6}, 13); err != nil {
		t.Fatal(err)
	}
	cl, err := client.DialCluster(closedPort(t), []string{raddr}, client.Options{
		PoolSize: 1, DialTimeout: 2 * time.Second, HealthInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if v, ok, err := cl.Get(bmeh.Key{5, 6}); err != nil || !ok || v != 13 {
		t.Fatalf("read off replica: v=%d ok=%v err=%v", v, ok, err)
	}
	start := time.Now()
	err = cl.Put(bmeh.Key{9, 9}, 1)
	if !errors.Is(err, client.ErrPrimaryDown) {
		t.Fatalf("put with primary down: %v, want ErrPrimaryDown", err)
	}
	// Second write hits the backoff gate: no dial, immediate typed error.
	if err := cl.Put(bmeh.Key{9, 9}, 2); !errors.Is(err, client.ErrPrimaryDown) {
		t.Fatalf("second put: %v, want ErrPrimaryDown", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("writes took %v, want fail-fast", elapsed)
	}
}

// TestStaleReplicaDemoted: a replica lagging past MaxLag is dropped
// from read routing after a probe, and reads land on the primary.
func TestStaleReplicaDemoted(t *testing.T) {
	pix, paddr, _ := startMemServer(t, server.Config{})
	if err := pix.Insert(bmeh.Key{7, 8}, 1); err != nil {
		t.Fatal(err)
	}

	// The "replica" holds a divergent value so the test can see which
	// node answered, and reports an enormous lag via STATS.
	rix, err := bmeh.New(bmeh.Options{Dims: 2, CacheFrames: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rix.Close() })
	if err := rix.Insert(bmeh.Key{7, 8}, 2); err != nil {
		t.Fatal(err)
	}
	rsrv := server.New(rix, server.Config{
		ReadOnly: true,
		ReplicaStatus: func() (uint64, uint64, bool) {
			return 1 << 20, 0, true // primarySeq far ahead of applied
		},
	})
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rdone := make(chan error, 1)
	go func() { rdone <- rsrv.Serve(rln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		rsrv.Shutdown(ctx)
		<-rdone
	})

	cl, err := client.DialCluster(paddr, []string{rln.Addr().String()}, client.Options{
		PoolSize: 1, MaxLag: 1, HealthInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Before any probe the replica is trusted and answers the read.
	if v, _, err := cl.Get(bmeh.Key{7, 8}); err != nil || v != 2 {
		t.Fatalf("pre-probe get: v=%d err=%v, want replica's 2", v, err)
	}
	cl.ProbeNow()
	var stale bool
	for _, h := range cl.Health() {
		if !h.Primary {
			stale = h.Stale
			if h.Lag <= 1 {
				t.Fatalf("probed lag %d, want > MaxLag", h.Lag)
			}
		}
	}
	if !stale {
		t.Fatal("lagging replica not marked stale after probe")
	}
	for i := 0; i < 10; i++ {
		if v, _, err := cl.Get(bmeh.Key{7, 8}); err != nil || v != 1 {
			t.Fatalf("post-probe get %d: v=%d err=%v, want primary's 1", i, v, err)
		}
	}
}

// busyListener answers the first `busy` requests on each connection
// with StatusBusy, the rest like a normal empty server.
func busyListener(t *testing.T, busy int) (addr string, busied *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	busied = new(atomic.Int64)
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				r := wire.NewReader(bufio.NewReader(nc), 0)
				served := 0
				for {
					fr, err := r.Next()
					if err != nil {
						return
					}
					st := wire.StatusNotFound
					if served < busy {
						st = wire.StatusBusy
						busied.Add(1)
					}
					served++
					resp := wire.AppendFrame(nil, wire.Frame{
						Op: fr.Op.Response(), ID: fr.ID,
						Payload: wire.AppendStatus(nil, st, ""),
					})
					if _, err := nc.Write(resp); err != nil {
						return
					}
				}
			}(nc)
		}
	}()
	return ln.Addr().String(), busied
}

// TestBusyRetriedWithBackoff: BUSY is a guarantee the server executed
// nothing, so the client retries it (with backoff) even past Retries=0
// semantics — here Retries=2 absorbs one BUSY and the call succeeds.
func TestBusyRetriedWithBackoff(t *testing.T) {
	addr, busied := busyListener(t, 1)
	cl, err := client.Dial(addr, client.Options{
		PoolSize: 1, Retries: 2,
		RedialBackoff: 5 * time.Millisecond, RedialBackoffMax: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, ok, err := cl.Get(bmeh.Key{1, 1}); err != nil || ok {
		t.Fatalf("get through one BUSY: ok=%v err=%v", ok, err)
	}
	if busied.Load() != 1 {
		t.Fatalf("BUSY answers: %d, want 1", busied.Load())
	}
}

// TestBusySurfacesWithoutRetries: with Retries=0 the caller sees the
// typed ErrBusy.
func TestBusySurfacesWithoutRetries(t *testing.T) {
	addr, _ := busyListener(t, 100)
	cl, err := client.Dial(addr, client.Options{PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, _, err := cl.Get(bmeh.Key{1, 1}); !errors.Is(err, client.ErrBusy) {
		t.Fatalf("get against always-busy server: %v, want ErrBusy", err)
	}
}

// TestReadOnlyReplicaRefusesWrites: a replica server answers writes
// with the typed ErrReadOnly, and the client does not retry them.
func TestReadOnlyReplicaRefusesWrites(t *testing.T) {
	rix, err := bmeh.New(bmeh.Options{Dims: 2, CacheFrames: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rix.Close() })
	rsrv := server.New(rix, server.Config{ReadOnly: true})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- rsrv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		rsrv.Shutdown(ctx)
		<-done
	})

	cl, err := client.Dial(ln.Addr().String(), client.Options{PoolSize: 1, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Put(bmeh.Key{1, 1}, 1); !errors.Is(err, client.ErrReadOnly) {
		t.Fatalf("put to replica: %v, want ErrReadOnly", err)
	}
	if err := cl.Sync(); !errors.Is(err, client.ErrReadOnly) {
		t.Fatalf("sync to replica: %v, want ErrReadOnly", err)
	}
	if _, ok, err := cl.Get(bmeh.Key{1, 1}); err != nil || ok {
		t.Fatalf("get on replica: ok=%v err=%v", ok, err)
	}
}
