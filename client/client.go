// Package client is the Go client for bmehserve, the network daemon in
// cmd/bmehserve.
//
// A Client multiplexes requests over a small pool of TCP connections.
// Every connection is pipelined: requests are written back to back with
// distinct IDs and completions are matched by ID as they arrive, in
// whatever order the server finishes them — so N outstanding calls cost
// one round trip of latency, not N. The synchronous methods (Get, Put,
// …) each occupy one in-flight slot; the *Async variants return a Call
// immediately so one goroutine can keep dozens of requests in flight.
//
// Failure semantics: transport-level failures (dial, write, read,
// timeout, connection torn down mid-flight) are wrapped in *ConnError,
// and the synchronous methods retry them automatically — but only for
// idempotent operations (Get, Range, Stats, Sync). A Put, Delete or
// Batch whose connection died mid-flight returns the *ConnError
// unretried, because the server may or may not have applied it; the
// caller owns that ambiguity. Application-level outcomes (key absent,
// duplicate key, a server-side error message) are never retried.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"bmeh"
	"bmeh/internal/wire"
)

// Options configures a Client. The zero value is usable.
type Options struct {
	// PoolSize is how many connections the client multiplexes over
	// (default 4).
	PoolSize int
	// DialTimeout bounds one connection attempt (default 5s).
	DialTimeout time.Duration
	// RequestTimeout bounds one request attempt, send to completion
	// (default 10s). A timeout tears the connection down — pipelined
	// responses cannot be skipped individually — failing its other
	// in-flight calls with a retryable *ConnError.
	RequestTimeout time.Duration
	// Retries is how many times an idempotent operation is re-sent after
	// a transport failure (default 2; total attempts = 1 + Retries).
	Retries int
	// MaxPayload bounds response payloads (default wire.DefaultMaxPayload).
	MaxPayload int
}

func (o Options) withDefaults() Options {
	if o.PoolSize <= 0 {
		o.PoolSize = 4
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.MaxPayload <= 0 {
		o.MaxPayload = wire.DefaultMaxPayload
	}
	return o
}

// ConnError wraps a transport-level failure. Operations that return one
// have unknown server-side effect; the client retries them automatically
// only when they are idempotent.
type ConnError struct{ Err error }

func (e *ConnError) Error() string { return "client: connection: " + e.Err.Error() }
func (e *ConnError) Unwrap() error { return e.Err }

// RemoteError is an error message produced by the server for one
// request (for example a key whose dimensionality the index rejects).
type RemoteError string

func (e RemoteError) Error() string { return "client: server: " + string(e) }

// ErrClosed is returned by operations on a closed Client.
var ErrClosed = errors.New("client: closed")

// Stats is the server's index snapshot (see bmeh.Stats), plus the
// geometry a caller needs to build keys.
type Stats struct {
	Scheme            bmeh.Scheme
	Dims              int
	Width             int
	DirectoryLevels   int
	Records           uint64
	Reads, Writes     uint64
	DirectoryElements uint64
	DataPages         int
	DirectoryPages    int
	LoadFactor        float64
}

// Client is a pooled, pipelined bmehserve client. Safe for concurrent
// use.
type Client struct {
	addr   string
	opts   Options
	slots  []slot
	next   atomic.Uint64
	closed atomic.Bool
}

type slot struct {
	mu sync.Mutex
	cn *netConn
}

// Dial connects to a bmehserve at addr ("host:port"). The first
// connection is established eagerly so an unreachable server fails here
// rather than on the first operation; the rest of the pool dials lazily.
func Dial(addr string, opts Options) (*Client, error) {
	c := &Client{addr: addr, opts: opts.withDefaults()}
	c.slots = make([]slot, c.opts.PoolSize)
	if _, err := c.conn(0); err != nil {
		return nil, err
	}
	return c, nil
}

// Close tears down every connection. In-flight calls fail with a
// *ConnError.
func (c *Client) Close() error {
	c.closed.Store(true)
	for i := range c.slots {
		s := &c.slots[i]
		s.mu.Lock()
		if s.cn != nil {
			s.cn.fail(&ConnError{Err: ErrClosed})
			s.cn = nil
		}
		s.mu.Unlock()
	}
	return nil
}

// conn returns slot i's connection, dialing if absent or broken.
func (c *Client) conn(i int) (*netConn, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	s := &c.slots[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cn != nil && !s.cn.broken() {
		return s.cn, nil
	}
	nc, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, &ConnError{Err: err}
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	s.cn = newNetConn(nc, c.opts.MaxPayload)
	return s.cn, nil
}

// pick returns a connection, round-robin over the pool.
func (c *Client) pick() (*netConn, error) {
	i := int(c.next.Add(1)) % len(c.slots)
	return c.conn(i)
}

// roundTrip sends one request and waits for its completion, retrying
// transport failures when the operation is idempotent.
func (c *Client) roundTrip(op wire.Op, payload []byte, idempotent bool) (*Call, error) {
	attempts := 1
	if idempotent {
		attempts += c.opts.Retries
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		cn, err := c.pick()
		if err == nil {
			call := cn.send(op, payload, c.opts.RequestTimeout)
			<-call.done
			if call.Err == nil {
				return call, nil
			}
			err = call.Err
		}
		lastErr = err
		var ce *ConnError
		if !errors.As(err, &ce) {
			return nil, err // application-level: never retried
		}
		if c.closed.Load() {
			return nil, err
		}
	}
	return nil, lastErr
}

// Get returns the value stored under key on the server, and whether the
// key was present. Idempotent: retried on transport failure.
func (c *Client) Get(key bmeh.Key) (uint64, bool, error) {
	call, err := c.roundTrip(wire.OpGet, wire.AppendGetReq(nil, key), true)
	if err != nil {
		return 0, false, err
	}
	return call.Value, call.Found, nil
}

// Put stores value under key. It returns bmeh.ErrDuplicate when the key
// is already present. Not idempotent: a transport failure mid-flight is
// returned as a *ConnError without retrying (the server may have applied
// the write).
func (c *Client) Put(key bmeh.Key, value uint64) error {
	_, err := c.roundTrip(wire.OpPut, wire.AppendPutReq(nil, key, value), false)
	return err
}

// Delete removes key, reporting whether it was present. Not retried: a
// replayed delete would misreport an already-removed key as absent.
func (c *Client) Delete(key bmeh.Key) (bool, error) {
	call, err := c.roundTrip(wire.OpDel, wire.AppendGetReq(nil, key), false)
	if err != nil {
		return false, err
	}
	return call.Found, nil
}

// Range returns up to limit records in the axis-aligned box [lo, hi]
// (limit ≤ 0 accepts the server's cap). The second result is true when
// the server stopped early and more records exist in the box.
// Idempotent: retried on transport failure.
func (c *Client) Range(lo, hi bmeh.Key, limit int) ([]bmeh.KV, bool, error) {
	if limit < 0 {
		limit = 0
	}
	call, err := c.roundTrip(wire.OpRange, wire.AppendRangeReq(nil, lo, hi, uint32(limit)), true)
	if err != nil {
		return nil, false, err
	}
	return call.KVs, call.More, nil
}

// Batch inserts the given pairs in one request, returning how many were
// inserted (the remainder were duplicates). Not idempotent, not retried.
func (c *Client) Batch(kvs []bmeh.KV) (int, error) {
	enc := make([]wire.KV, len(kvs))
	for i, kv := range kvs {
		enc[i] = wire.KV{Key: kv.Key, Value: kv.Value}
	}
	call, err := c.roundTrip(wire.OpBatch, wire.AppendBatchReq(nil, enc), false)
	if err != nil {
		return 0, err
	}
	return call.Inserted, nil
}

// Sync asks the server to commit everything it has acknowledged.
// Idempotent: retried on transport failure.
func (c *Client) Sync() error {
	_, err := c.roundTrip(wire.OpSync, nil, true)
	return err
}

// Stats returns the server's index statistics. Idempotent.
func (c *Client) Stats() (Stats, error) {
	call, err := c.roundTrip(wire.OpStats, nil, true)
	if err != nil {
		return Stats{}, err
	}
	return call.Stats, nil
}

// GetAsync issues a pipelined GET and returns immediately; read the
// result from the Call after Done. Async calls are not retried.
func (c *Client) GetAsync(key bmeh.Key) *Call {
	return c.async(wire.OpGet, wire.AppendGetReq(nil, key))
}

// PutAsync issues a pipelined PUT and returns immediately. Like Put it
// is not retried; completion carries nil, bmeh.ErrDuplicate, or an
// error.
func (c *Client) PutAsync(key bmeh.Key, value uint64) *Call {
	return c.async(wire.OpPut, wire.AppendPutReq(nil, key, value))
}

func (c *Client) async(op wire.Op, payload []byte) *Call {
	cn, err := c.pick()
	if err != nil {
		call := &Call{op: op, done: make(chan struct{})}
		call.Err = err
		close(call.done)
		return call
	}
	return cn.send(op, payload, c.opts.RequestTimeout)
}

// Call is one in-flight (or completed) pipelined request. Its result
// fields are valid only after Done is closed / Wait returns.
type Call struct {
	// Err is the call's failure: nil, bmeh.ErrDuplicate, a RemoteError,
	// or a *ConnError.
	Err error
	// Value and Found hold a GET result.
	Value uint64
	Found bool
	// KVs and More hold a RANGE result.
	KVs  []bmeh.KV
	More bool
	// Inserted holds a BATCH result.
	Inserted int
	// Stats holds a STATS result.
	Stats Stats

	op    wire.Op
	done  chan struct{}
	timer *time.Timer
}

// Done is closed when the call completes.
func (ca *Call) Done() <-chan struct{} { return ca.done }

// Wait blocks until the call completes and returns its error.
func (ca *Call) Wait() error {
	<-ca.done
	return ca.Err
}

// netConn is one pipelined connection.
type netConn struct {
	nc  net.Conn
	max int

	wmu sync.Mutex
	bw  *bufio.Writer

	pmu     sync.Mutex
	pending map[uint64]*Call
	err     error // sticky transport failure; guarded by pmu
	idSeq   uint64
}

func newNetConn(nc net.Conn, maxPayload int) *netConn {
	cn := &netConn{
		nc:      nc,
		max:     maxPayload,
		bw:      bufio.NewWriterSize(nc, 64<<10),
		pending: make(map[uint64]*Call),
	}
	go cn.readLoop()
	return cn
}

func (cn *netConn) broken() bool {
	cn.pmu.Lock()
	defer cn.pmu.Unlock()
	return cn.err != nil
}

// fail marks the connection dead and completes every pending call with
// err. Idempotent; the first failure wins.
func (cn *netConn) fail(err error) {
	cn.pmu.Lock()
	if cn.err != nil {
		cn.pmu.Unlock()
		return
	}
	cn.err = err
	calls := cn.pending
	cn.pending = nil
	cn.pmu.Unlock()
	cn.nc.Close()
	for _, call := range calls {
		call.finish(err)
	}
}

func (ca *Call) finish(err error) {
	if ca.timer != nil {
		ca.timer.Stop()
	}
	ca.Err = err
	close(ca.done)
}

// send registers a call, writes its frame, and returns it. The call is
// already completed (with the sticky error) when the connection has
// failed.
func (cn *netConn) send(op wire.Op, payload []byte, timeout time.Duration) *Call {
	call := &Call{op: op, done: make(chan struct{})}
	cn.pmu.Lock()
	if cn.err != nil {
		err := cn.err
		cn.pmu.Unlock()
		call.Err = err
		close(call.done)
		return call
	}
	cn.idSeq++
	id := cn.idSeq
	cn.pending[id] = call
	if timeout > 0 {
		// A pipelined response cannot be abandoned individually, so a
		// timeout declares the whole connection dead; its other calls
		// fail retryably and the pool redials.
		call.timer = time.AfterFunc(timeout, func() {
			cn.fail(&ConnError{Err: fmt.Errorf("request timeout after %v", timeout)})
		})
	}
	cn.pmu.Unlock()

	cn.wmu.Lock()
	buf := wire.AppendFrame(nil, wire.Frame{Op: op, ID: id, Payload: payload})
	_, err := cn.bw.Write(buf)
	if err == nil {
		err = cn.bw.Flush()
	}
	cn.wmu.Unlock()
	if err != nil {
		cn.fail(&ConnError{Err: err})
	}
	return call
}

func (cn *netConn) readLoop() {
	r := wire.NewReader(bufio.NewReaderSize(cn.nc, 64<<10), cn.max)
	for {
		fr, err := r.Next()
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			cn.fail(&ConnError{Err: err})
			return
		}
		cn.pmu.Lock()
		call := cn.pending[fr.ID]
		delete(cn.pending, fr.ID)
		cn.pmu.Unlock()
		if call == nil {
			// A completion we no longer track (late response after the
			// conn was failed); nothing to deliver to.
			continue
		}
		if fr.Op != call.op.Response() {
			cn.fail(&ConnError{Err: fmt.Errorf("response opcode %v for request %v", fr.Op, call.op)})
			return
		}
		call.finish(call.decode(fr.Payload))
	}
}

// decode parses a response payload into the call's result fields; the
// returned error becomes the call's Err. The payload aliases the read
// buffer, so everything retained is copied here.
func (ca *Call) decode(payload []byte) error {
	st, body, err := wire.DecodeStatus(payload)
	if err != nil {
		return err
	}
	switch st {
	case wire.StatusNotFound:
		ca.Found = false
		return nil
	case wire.StatusDuplicate:
		return bmeh.ErrDuplicate
	case wire.StatusErr:
		return RemoteError(string(body))
	case wire.StatusOK:
	default:
		return fmt.Errorf("client: unknown response status %d", st)
	}
	switch ca.op {
	case wire.OpGet:
		v, err := wire.DecodeGetRespBody(body)
		if err != nil {
			return err
		}
		ca.Value, ca.Found = v, true
	case wire.OpDel:
		ca.Found = true
	case wire.OpRange:
		kvs, more, err := wire.DecodeRangeRespBody(body)
		if err != nil {
			return err
		}
		ca.KVs = make([]bmeh.KV, len(kvs))
		for i, kv := range kvs {
			ca.KVs[i] = bmeh.KV{Key: bmeh.Key(kv.Key), Value: kv.Value}
		}
		ca.More = more
	case wire.OpBatch:
		n, err := wire.DecodeBatchRespBody(body)
		if err != nil {
			return err
		}
		ca.Inserted = int(n)
	case wire.OpStats:
		s, err := wire.DecodeStatsRespBody(body)
		if err != nil {
			return err
		}
		ca.Stats = Stats{
			Scheme:            bmeh.Scheme(s.Scheme),
			Dims:              int(s.Dims),
			Width:             int(s.Width),
			DirectoryLevels:   int(s.DirectoryLevels),
			Records:           s.Records,
			Reads:             s.Reads,
			Writes:            s.Writes,
			DirectoryElements: s.DirectoryElements,
			DataPages:         int(s.DataPages),
			DirectoryPages:    int(s.DirectoryPages),
			LoadFactor:        s.LoadFactor,
		}
	}
	return nil
}
