// Package client is the Go client for bmehserve, the network daemon in
// cmd/bmehserve.
//
// A Client multiplexes requests over a small pool of TCP connections.
// Every connection is pipelined: requests are written back to back with
// distinct IDs and completions are matched by ID as they arrive, in
// whatever order the server finishes them — so N outstanding calls cost
// one round trip of latency, not N. The synchronous methods (Get, Put,
// …) each occupy one in-flight slot; the *Async variants return a Call
// immediately so one goroutine can keep dozens of requests in flight.
//
// Failure semantics: transport-level failures (dial, write, read,
// timeout, connection torn down mid-flight) are wrapped in *ConnError,
// and the synchronous methods retry them automatically — but only for
// idempotent operations (Get, Range, Stats, Sync). A Put, Delete or
// Batch whose connection died mid-flight returns the *ConnError
// unretried, because the server may or may not have applied it; the
// caller owns that ambiguity. Application-level outcomes (key absent,
// duplicate key, a server-side error message) are never retried. A
// StatusBusy response is the exception among retries: the server
// guarantees a busy-rejected request was never executed, so the client
// retries it with backoff regardless of idempotence.
//
// Topology: DialCluster takes a primary plus read replicas. Writes
// (Put, Delete, Batch, Sync) are routed to the primary only; reads
// (Get, Range, Stats) prefer a healthy replica and fall back to the
// primary, so reads keep serving while the primary restarts and a
// primary-down write fails fast with ErrPrimaryDown. A background
// prober measures each replica's replication lag and demotes replicas
// lagging beyond Options.MaxLag until they catch up. Every endpoint's
// redial is gated by capped exponential backoff with full jitter, so a
// dead node costs a bounded trickle of dial attempts, not a hammer.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"bmeh"
	"bmeh/internal/cluster"
	"bmeh/internal/wire"
)

// Options configures a Client. The zero value is usable.
type Options struct {
	// PoolSize is how many connections the client multiplexes over
	// (default 4).
	PoolSize int
	// DialTimeout bounds one connection attempt (default 5s).
	DialTimeout time.Duration
	// RequestTimeout bounds one request attempt, send to completion
	// (default 10s). A timeout tears the connection down — pipelined
	// responses cannot be skipped individually — failing its other
	// in-flight calls with a retryable *ConnError.
	RequestTimeout time.Duration
	// Retries is how many times an idempotent operation is re-sent after
	// a transport failure (default 2; total attempts = 1 + Retries).
	Retries int
	// MaxPayload bounds response payloads (default wire.DefaultMaxPayload).
	MaxPayload int
	// Replicas lists read-replica addresses (Dial only; DialCluster
	// takes them as an argument).
	Replicas []string
	// RedialBackoff is the base delay before redialing an endpoint whose
	// dial failed (default 50ms). Successive failures double it, with
	// full jitter, up to RedialBackoffMax.
	RedialBackoff time.Duration
	// RedialBackoffMax caps the redial delay (default 2s).
	RedialBackoffMax time.Duration
	// MaxLag is the replication lag (primary commits not yet applied)
	// beyond which a replica is demoted from read routing until it
	// catches up (default 4096).
	MaxLag uint64
	// HealthInterval is how often replica lag is probed (default 1s;
	// < 0 disables the prober — ProbeNow still works).
	HealthInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.PoolSize <= 0 {
		o.PoolSize = 4
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.MaxPayload <= 0 {
		o.MaxPayload = wire.DefaultMaxPayload
	}
	if o.RedialBackoff <= 0 {
		o.RedialBackoff = 50 * time.Millisecond
	}
	if o.RedialBackoffMax <= 0 {
		o.RedialBackoffMax = 2 * time.Second
	}
	if o.MaxLag == 0 {
		o.MaxLag = 4096
	}
	if o.HealthInterval == 0 {
		o.HealthInterval = time.Second
	}
	return o
}

// backoffDelay returns the capped-exponential, fully jittered delay for
// the given consecutive failure count (1-based): uniform in
// (0, min(base·2^(fails-1), max)].
func backoffDelay(base, max time.Duration, fails int) time.Duration {
	d := base
	for i := 1; i < fails && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return time.Duration(rand.Int64N(int64(d)) + 1)
}

// ConnError wraps a transport-level failure. Operations that return one
// have unknown server-side effect; the client retries them automatically
// only when they are idempotent.
type ConnError struct{ Err error }

func (e *ConnError) Error() string { return "client: connection: " + e.Err.Error() }
func (e *ConnError) Unwrap() error { return e.Err }

// RemoteError is an error message produced by the server for one
// request (for example a key whose dimensionality the index rejects).
type RemoteError string

func (e RemoteError) Error() string { return "client: server: " + string(e) }

// ErrClosed is returned by operations on a closed Client.
var ErrClosed = errors.New("client: closed")

// ErrPrimaryDown marks a write that failed because the primary is
// unreachable (wrapped in a *ConnError). Writes never fail over to a
// replica — replicas are read-only — so the caller decides whether to
// wait and retry.
var ErrPrimaryDown = errors.New("client: primary unavailable")

// ErrBusy is a server's overload rejection (StatusBusy). The request
// was not executed; the client retries it with backoff up to
// Options.Retries before surfacing this.
var ErrBusy = errors.New("client: server busy")

// ErrReadOnly reports a write sent to a read-only replica — the
// configured primary address points at a replica.
var ErrReadOnly = errors.New("client: server is a read-only replica")

// ErrWrongShard reports a request for a key the addressed node does not
// own (or a write into a range fenced for migration). The request was
// not executed. Match with errors.Is; WrongShardEpoch extracts the
// node's shard-map epoch so a router can tell a stale cached map (its
// epoch < the node's) from a split still in flight (epochs equal).
// The Router handles this transparently; it surfaces only from direct
// Client use against a clustered node.
var ErrWrongShard = errors.New("client: wrong shard for key")

// ErrNoShardMap reports a ShardMap call to a node that is not (yet)
// part of a cluster.
var ErrNoShardMap = errors.New("client: node has no shard map")

// wrongShardError carries the answering node's map epoch alongside the
// ErrWrongShard identity.
type wrongShardError struct{ epoch uint64 }

func (e *wrongShardError) Error() string {
	return fmt.Sprintf("client: wrong shard for key (server at map epoch %d)", e.epoch)
}
func (e *wrongShardError) Is(target error) bool { return target == ErrWrongShard }

// WrongShardEpoch returns the shard-map epoch carried by an
// ErrWrongShard failure, and whether err is one.
func WrongShardEpoch(err error) (uint64, bool) {
	var ws *wrongShardError
	if errors.As(err, &ws) {
		return ws.epoch, true
	}
	return 0, false
}

// Stats is the server's index snapshot (see bmeh.Stats), plus the
// geometry a caller needs to build keys and the node's replication
// position.
type Stats struct {
	Scheme            bmeh.Scheme
	Dims              int
	Width             int
	DirectoryLevels   int
	Records           uint64
	Reads, Writes     uint64
	DirectoryElements uint64
	DataPages         int
	DirectoryPages    int
	LoadFactor        float64
	// Role is wire.RolePrimary or wire.RoleReplica.
	Role uint8
	// Replicas is the primary's live subscriber count (0 on a replica).
	Replicas int
	// CommitSeq is the node's last durable commit; PrimarySeq is the
	// primary's (as last observed, on a replica). Their difference is
	// the replica's lag in commits.
	CommitSeq  uint64
	PrimarySeq uint64
	// COW reports whether the server's index runs in copy-on-write mode.
	// When it does, Epoch is the current commit epoch, PinnedEpochs the
	// number of open snapshots, and ReclaimablePages the retired pages
	// waiting for those snapshots to close.
	COW              bool
	Epoch            uint64
	PinnedEpochs     int
	ReclaimablePages int
	// Clustered reports whether the node has a shard map installed. When
	// it does, ShardID is its index in that map, [ShardLo, ShardHi) its
	// owned pseudo-key prefix range (ShardHi 0 meaning 2^64), and
	// ShardMapEpoch the map version it enforces.
	Clustered     bool
	ShardID       int
	ShardLo       uint64
	ShardHi       uint64
	ShardMapEpoch uint64
}

// Client is a pooled, pipelined, topology-aware bmehserve client. Safe
// for concurrent use.
type Client struct {
	opts     Options
	primary  *endpoint
	replicas []*endpoint
	rr       atomic.Uint64 // read round-robin over replicas
	closed   atomic.Bool

	proberStop chan struct{}
	proberDone chan struct{}
}

// endpoint is one server address with its connection pool, redial
// backoff gate, and health state.
type endpoint struct {
	addr    string
	primary bool
	slots   []slot
	next    atomic.Uint64

	mu       sync.Mutex
	fails    int       // consecutive dial failures
	nextDial time.Time // redial gate; zero = dial freely
	lastErr  error     // the failure the gate reports without dialing

	dials atomic.Int64  // total dial attempts (observability, tests)
	lag   atomic.Uint64 // last probed replication lag
	stale atomic.Bool   // lag exceeded MaxLag; demoted from reads
	live  atomic.Int64  // open connections
}

type slot struct {
	mu sync.Mutex
	cn *netConn
}

// Dial connects to a bmehserve at addr ("host:port"), the primary when
// opts.Replicas is set. With no replicas the first connection is
// established eagerly so an unreachable server fails here rather than
// on the first operation; with replicas, any reachable node suffices.
func Dial(addr string, opts Options) (*Client, error) {
	return DialCluster(addr, opts.Replicas, opts)
}

// DialCluster connects to a primary and its read replicas. Reads are
// served by healthy replicas (falling back to the primary); writes go
// to the primary only.
func DialCluster(primary string, replicas []string, opts Options) (*Client, error) {
	opts.Replicas = nil
	c := &Client{opts: opts.withDefaults()}
	c.primary = c.newEndpoint(primary, true)
	for _, addr := range replicas {
		if addr == "" || addr == primary {
			continue
		}
		c.replicas = append(c.replicas, c.newEndpoint(addr, false))
	}
	// Eager reachability check: the primary with no replicas configured;
	// any node otherwise (the cluster is useful for reads even while the
	// primary restarts).
	_, err := c.endpointConn(c.primary)
	if err != nil && len(c.replicas) == 0 {
		return nil, err
	}
	if err != nil {
		ok := false
		for _, e := range c.replicas {
			if _, rerr := c.endpointConn(e); rerr == nil {
				ok = true
				break
			}
		}
		if !ok {
			return nil, err
		}
	}
	if len(c.replicas) > 0 && c.opts.HealthInterval > 0 {
		c.proberStop = make(chan struct{})
		c.proberDone = make(chan struct{})
		go c.proberLoop()
	}
	return c, nil
}

func (c *Client) newEndpoint(addr string, primary bool) *endpoint {
	return &endpoint{addr: addr, primary: primary, slots: make([]slot, c.opts.PoolSize)}
}

// Close tears down every connection. In-flight calls fail with a
// *ConnError.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	if c.proberStop != nil {
		close(c.proberStop)
		<-c.proberDone
	}
	for _, e := range c.endpoints() {
		for i := range e.slots {
			s := &e.slots[i]
			s.mu.Lock()
			if s.cn != nil {
				s.cn.fail(&ConnError{Err: ErrClosed})
				s.cn = nil
			}
			s.mu.Unlock()
		}
	}
	return nil
}

func (c *Client) endpoints() []*endpoint {
	return append([]*endpoint{c.primary}, c.replicas...)
}

// endpointConn returns a connection to e from its pool (round-robin),
// dialing if absent or broken. Redials are gated: after a dial failure
// the endpoint rejects further attempts with the cached error until its
// jittered backoff delay expires, so a dead node is probed at a bounded
// rate no matter how hot the request path is.
func (c *Client) endpointConn(e *endpoint) (*netConn, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	i := int(e.next.Add(1)) % len(e.slots)
	s := &e.slots[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cn != nil && !s.cn.broken() {
		return s.cn, nil
	}
	if s.cn != nil {
		e.live.Add(-1)
		s.cn = nil
	}
	e.mu.Lock()
	if time.Now().Before(e.nextDial) {
		err := e.lastErr
		e.mu.Unlock()
		return nil, &ConnError{Err: fmt.Errorf("%s: backing off: %w", e.addr, err)}
	}
	e.mu.Unlock()
	e.dials.Add(1)
	nc, err := net.DialTimeout("tcp", e.addr, c.opts.DialTimeout)
	if err != nil {
		e.mu.Lock()
		e.fails++
		e.lastErr = err
		e.nextDial = time.Now().Add(backoffDelay(c.opts.RedialBackoff, c.opts.RedialBackoffMax, e.fails))
		e.mu.Unlock()
		return nil, &ConnError{Err: err}
	}
	e.mu.Lock()
	e.fails, e.lastErr, e.nextDial = 0, nil, time.Time{}
	e.mu.Unlock()
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	s.cn = newNetConn(nc, c.opts.MaxPayload)
	e.live.Add(1)
	return s.cn, nil
}

// gated reports whether the endpoint is inside its redial backoff
// window with no live connection to lean on.
func (e *endpoint) gated() bool {
	if e.live.Load() > 0 {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return time.Now().Before(e.nextDial)
}

// pickConn routes one request. Writes go to the primary only — a
// gated primary fails fast with ErrPrimaryDown rather than sleeping.
// Reads walk the healthy (non-stale, non-gated) replicas round-robin,
// fall back to the primary, then — when everything is gated — to any
// replica regardless of staleness, so reads degrade to stale-but-served
// before they degrade to failing.
func (c *Client) pickConn(write bool) (*netConn, error) {
	if write {
		if c.primary.gated() {
			c.primary.mu.Lock()
			err := c.primary.lastErr
			c.primary.mu.Unlock()
			return nil, &ConnError{Err: fmt.Errorf("%w: %v", ErrPrimaryDown, err)}
		}
		cn, err := c.endpointConn(c.primary)
		if err != nil {
			var ce *ConnError
			if errors.As(err, &ce) {
				return nil, &ConnError{Err: fmt.Errorf("%w: %v", ErrPrimaryDown, ce.Err)}
			}
			return nil, err
		}
		return cn, nil
	}
	var lastErr error
	if n := len(c.replicas); n > 0 {
		start := int(c.rr.Add(1))
		for k := 0; k < n; k++ {
			e := c.replicas[(start+k)%n]
			if e.stale.Load() || e.gated() {
				continue
			}
			cn, err := c.endpointConn(e)
			if err == nil {
				return cn, nil
			}
			lastErr = err
		}
	}
	if !c.primary.gated() {
		cn, err := c.endpointConn(c.primary)
		if err == nil {
			return cn, nil
		}
		lastErr = err
	}
	// Everything healthy is gated; a stale replica is still a better
	// answer than none.
	for _, e := range c.replicas {
		if e.gated() {
			continue
		}
		cn, err := c.endpointConn(e)
		if err == nil {
			return cn, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = &ConnError{Err: errors.New("all endpoints backing off")}
	}
	return nil, lastErr
}

// roundTrip sends one request and waits for its completion. Transport
// failures are retried (on a re-picked connection) only when the
// operation is idempotent; StatusBusy — which the server sends before
// executing anything — is retried with backoff for every operation.
func (c *Client) roundTrip(op wire.Op, payload []byte, write, idempotent bool) (*Call, error) {
	var lastErr error
	connRetries, busyRetries := 0, 0
	for {
		var err error
		cn, perr := c.pickConn(write)
		if perr == nil {
			call := cn.send(op, payload, c.opts.RequestTimeout)
			<-call.done
			if call.Err == nil {
				return call, nil
			}
			err = call.Err
		} else {
			err = perr
		}
		lastErr = err
		if c.closed.Load() {
			return nil, lastErr
		}
		var ce *ConnError
		switch {
		case errors.Is(err, ErrBusy):
			if busyRetries >= c.opts.Retries {
				return nil, lastErr
			}
			busyRetries++
			time.Sleep(backoffDelay(c.opts.RedialBackoff, c.opts.RedialBackoffMax, busyRetries))
		case errors.As(err, &ce):
			if !idempotent || connRetries >= c.opts.Retries {
				return nil, lastErr
			}
			connRetries++
		default:
			return nil, lastErr // application-level: never retried
		}
	}
}

// Get returns the value stored under key on the server, and whether the
// key was present. Idempotent: retried on transport failure.
func (c *Client) Get(key bmeh.Key) (uint64, bool, error) {
	call, err := c.roundTrip(wire.OpGet, wire.AppendGetReq(nil, key), false, true)
	if err != nil {
		return 0, false, err
	}
	return call.Value, call.Found, nil
}

// Put stores value under key. It returns bmeh.ErrDuplicate when the key
// is already present. Not idempotent: a transport failure mid-flight is
// returned as a *ConnError without retrying (the server may have applied
// the write).
func (c *Client) Put(key bmeh.Key, value uint64) error {
	_, err := c.roundTrip(wire.OpPut, wire.AppendPutReq(nil, key, value), true, false)
	return err
}

// Delete removes key, reporting whether it was present. Not retried: a
// replayed delete would misreport an already-removed key as absent.
func (c *Client) Delete(key bmeh.Key) (bool, error) {
	call, err := c.roundTrip(wire.OpDel, wire.AppendGetReq(nil, key), true, false)
	if err != nil {
		return false, err
	}
	return call.Found, nil
}

// Range returns up to limit records in the axis-aligned box [lo, hi]
// (limit ≤ 0 accepts the server's cap). The second result is true when
// the server stopped early and more records exist in the box.
// Idempotent: retried on transport failure.
func (c *Client) Range(lo, hi bmeh.Key, limit int) ([]bmeh.KV, bool, error) {
	if limit < 0 {
		limit = 0
	}
	call, err := c.roundTrip(wire.OpRange, wire.AppendRangeReq(nil, lo, hi, uint32(limit)), false, true)
	if err != nil {
		return nil, false, err
	}
	return call.KVs, call.More, nil
}

// Batch inserts the given pairs in one request, returning how many were
// inserted (the remainder were duplicates). Not idempotent, not retried.
func (c *Client) Batch(kvs []bmeh.KV) (int, error) {
	enc := make([]wire.KV, len(kvs))
	for i, kv := range kvs {
		enc[i] = wire.KV{Key: kv.Key, Value: kv.Value}
	}
	call, err := c.roundTrip(wire.OpBatch, wire.AppendBatchReq(nil, enc), true, false)
	if err != nil {
		return 0, err
	}
	return call.Inserted, nil
}

// Sync asks the server to commit everything it has acknowledged. A
// write (it must reach the primary), but idempotent: retried on
// transport failure.
func (c *Client) Sync() error {
	_, err := c.roundTrip(wire.OpSync, nil, true, true)
	return err
}

// Stats returns a server's index statistics — from a replica when one
// is serving reads. Idempotent.
func (c *Client) Stats() (Stats, error) {
	call, err := c.roundTrip(wire.OpStats, nil, false, true)
	if err != nil {
		return Stats{}, err
	}
	return call.Stats, nil
}

// GetAsync issues a pipelined GET and returns immediately; read the
// result from the Call after Done. Async calls are not retried.
func (c *Client) GetAsync(key bmeh.Key) *Call {
	return c.async(wire.OpGet, wire.AppendGetReq(nil, key))
}

// PutAsync issues a pipelined PUT and returns immediately. Like Put it
// is not retried; completion carries nil, bmeh.ErrDuplicate, or an
// error.
func (c *Client) PutAsync(key bmeh.Key, value uint64) *Call {
	return c.async(wire.OpPut, wire.AppendPutReq(nil, key, value))
}

func (c *Client) async(op wire.Op, payload []byte) *Call {
	write := op == wire.OpPut
	cn, err := c.pickConn(write)
	if err != nil {
		call := &Call{op: op, done: make(chan struct{})}
		call.Err = err
		close(call.done)
		return call
	}
	return cn.send(op, payload, c.opts.RequestTimeout)
}

// EndpointHealth is one node's routing state as the client sees it.
type EndpointHealth struct {
	Addr      string
	Primary   bool
	Connected bool // at least one live pooled connection
	Backoff   bool // inside its redial backoff window
	Stale     bool // demoted from reads for lagging past MaxLag
	Lag       uint64
	Dials     int64 // dial attempts so far (gated redials don't count)
}

// Health snapshots every endpoint's routing state, primary first.
func (c *Client) Health() []EndpointHealth {
	eps := c.endpoints()
	out := make([]EndpointHealth, len(eps))
	for i, e := range eps {
		e.mu.Lock()
		backoff := time.Now().Before(e.nextDial)
		e.mu.Unlock()
		out[i] = EndpointHealth{
			Addr:      e.addr,
			Primary:   e.primary,
			Connected: e.live.Load() > 0,
			Backoff:   backoff,
			Stale:     e.stale.Load(),
			Lag:       e.lag.Load(),
			Dials:     e.dials.Load(),
		}
	}
	return out
}

// ProbeNow runs one synchronous health probe round: each replica is
// asked for STATS, its lag recorded, and its read eligibility updated.
// The background prober does the same every Options.HealthInterval.
func (c *Client) ProbeNow() {
	for _, e := range c.replicas {
		c.probe(e)
	}
}

func (c *Client) probe(e *endpoint) {
	cn, err := c.endpointConn(e)
	if err != nil {
		// Unreachable: the redial gate already keeps it out of routing;
		// staleness is left as last measured.
		return
	}
	call := cn.send(wire.OpStats, nil, c.opts.RequestTimeout)
	<-call.done
	if call.Err != nil {
		return
	}
	var lag uint64
	if call.Stats.PrimarySeq > call.Stats.CommitSeq {
		lag = call.Stats.PrimarySeq - call.Stats.CommitSeq
	}
	e.lag.Store(lag)
	e.stale.Store(lag > c.opts.MaxLag)
}

func (c *Client) proberLoop() {
	defer close(c.proberDone)
	t := time.NewTicker(c.opts.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-c.proberStop:
			return
		case <-t.C:
			c.ProbeNow()
		}
	}
}

// Call is one in-flight (or completed) pipelined request. Its result
// fields are valid only after Done is closed / Wait returns.
type Call struct {
	// Err is the call's failure: nil, bmeh.ErrDuplicate, a RemoteError,
	// or a *ConnError.
	Err error
	// Value and Found hold a GET result.
	Value uint64
	Found bool
	// KVs and More hold a RANGE result.
	KVs  []bmeh.KV
	More bool
	// Inserted holds a BATCH result.
	Inserted int
	// Stats holds a STATS result.
	Stats Stats
	// Session and NextSeq hold a LOAD_BEGIN result; AckSeq a LOAD_CHUNK
	// acknowledgment; Loaded and Duplicates a LOAD_COMMIT result.
	Session    uint64
	NextSeq    uint64
	AckSeq     uint64
	Loaded     uint64
	Duplicates uint64
	// ShardMapBlob holds a SHARD_MAP result (encoded map); ShardEpoch a
	// SHARD_MAP_SET acknowledgment; Median and MedianOwned a
	// SHARD_MEDIAN result.
	ShardMapBlob []byte
	ShardEpoch   uint64
	Median       uint64
	MedianOwned  uint64

	op    wire.Op
	done  chan struct{}
	timer *time.Timer
}

// Done is closed when the call completes.
func (ca *Call) Done() <-chan struct{} { return ca.done }

// Wait blocks until the call completes and returns its error.
func (ca *Call) Wait() error {
	<-ca.done
	return ca.Err
}

// netConn is one pipelined connection.
type netConn struct {
	nc  net.Conn
	max int

	wmu sync.Mutex
	bw  *bufio.Writer

	pmu     sync.Mutex
	pending map[uint64]*Call
	err     error // sticky transport failure; guarded by pmu
	idSeq   uint64
}

func newNetConn(nc net.Conn, maxPayload int) *netConn {
	cn := &netConn{
		nc:      nc,
		max:     maxPayload,
		bw:      bufio.NewWriterSize(nc, 64<<10),
		pending: make(map[uint64]*Call),
	}
	go cn.readLoop()
	return cn
}

func (cn *netConn) broken() bool {
	cn.pmu.Lock()
	defer cn.pmu.Unlock()
	return cn.err != nil
}

// fail marks the connection dead and completes every pending call with
// err. Idempotent; the first failure wins.
func (cn *netConn) fail(err error) {
	cn.pmu.Lock()
	if cn.err != nil {
		cn.pmu.Unlock()
		return
	}
	cn.err = err
	calls := cn.pending
	cn.pending = nil
	cn.pmu.Unlock()
	cn.nc.Close()
	for _, call := range calls {
		call.finish(err)
	}
}

func (ca *Call) finish(err error) {
	if ca.timer != nil {
		ca.timer.Stop()
	}
	ca.Err = err
	close(ca.done)
}

// send registers a call, writes its frame, and returns it. The call is
// already completed (with the sticky error) when the connection has
// failed.
func (cn *netConn) send(op wire.Op, payload []byte, timeout time.Duration) *Call {
	call := &Call{op: op, done: make(chan struct{})}
	cn.pmu.Lock()
	if cn.err != nil {
		err := cn.err
		cn.pmu.Unlock()
		call.Err = err
		close(call.done)
		return call
	}
	cn.idSeq++
	id := cn.idSeq
	cn.pending[id] = call
	if timeout > 0 {
		// A pipelined response cannot be abandoned individually, so a
		// timeout declares the whole connection dead; its other calls
		// fail retryably and the pool redials.
		call.timer = time.AfterFunc(timeout, func() {
			cn.fail(&ConnError{Err: fmt.Errorf("request timeout after %v", timeout)})
		})
	}
	cn.pmu.Unlock()

	cn.wmu.Lock()
	buf := wire.AppendFrame(nil, wire.Frame{Op: op, ID: id, Payload: payload})
	_, err := cn.bw.Write(buf)
	if err == nil {
		err = cn.bw.Flush()
	}
	cn.wmu.Unlock()
	if err != nil {
		cn.fail(&ConnError{Err: err})
	}
	return call
}

func (cn *netConn) readLoop() {
	r := wire.NewReader(bufio.NewReaderSize(cn.nc, 64<<10), cn.max)
	for {
		fr, err := r.Next()
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			cn.fail(&ConnError{Err: err})
			return
		}
		cn.pmu.Lock()
		call := cn.pending[fr.ID]
		delete(cn.pending, fr.ID)
		cn.pmu.Unlock()
		if call == nil {
			// A completion we no longer track (late response after the
			// conn was failed); nothing to deliver to.
			continue
		}
		if fr.Op != call.op.Response() {
			cn.fail(&ConnError{Err: fmt.Errorf("response opcode %v for request %v", fr.Op, call.op)})
			return
		}
		call.finish(call.decode(fr.Payload))
	}
}

// decode parses a response payload into the call's result fields; the
// returned error becomes the call's Err. The payload aliases the read
// buffer, so everything retained is copied here.
func (ca *Call) decode(payload []byte) error {
	st, body, err := wire.DecodeStatus(payload)
	if err != nil {
		return err
	}
	switch st {
	case wire.StatusNotFound:
		ca.Found = false
		return nil
	case wire.StatusDuplicate:
		return bmeh.ErrDuplicate
	case wire.StatusErr:
		return RemoteError(string(body))
	case wire.StatusBusy:
		return ErrBusy
	case wire.StatusReadOnly:
		return ErrReadOnly
	case wire.StatusWrongShard:
		return &wrongShardError{epoch: wire.DecodeWrongShardBody(body)}
	case wire.StatusOK:
	default:
		return fmt.Errorf("client: unknown response status %d", st)
	}
	switch ca.op {
	case wire.OpGet:
		v, err := wire.DecodeGetRespBody(body)
		if err != nil {
			return err
		}
		ca.Value, ca.Found = v, true
	case wire.OpDel:
		ca.Found = true
	case wire.OpRange:
		kvs, more, err := wire.DecodeRangeRespBody(body)
		if err != nil {
			return err
		}
		ca.KVs = make([]bmeh.KV, len(kvs))
		for i, kv := range kvs {
			ca.KVs[i] = bmeh.KV{Key: bmeh.Key(kv.Key), Value: kv.Value}
		}
		ca.More = more
	case wire.OpBatch:
		n, err := wire.DecodeBatchRespBody(body)
		if err != nil {
			return err
		}
		ca.Inserted = int(n)
	case wire.OpLoadBegin:
		s, seq, err := wire.DecodeLoadBeginRespBody(body)
		if err != nil {
			return err
		}
		ca.Session, ca.NextSeq = s, seq
	case wire.OpLoadChunk:
		seq, err := wire.DecodeLoadChunkRespBody(body)
		if err != nil {
			return err
		}
		ca.AckSeq = seq
	case wire.OpLoadCommit:
		loaded, dups, err := wire.DecodeLoadCommitRespBody(body)
		if err != nil {
			return err
		}
		ca.Loaded, ca.Duplicates = loaded, dups
	case wire.OpStats:
		s, err := wire.DecodeStatsRespBody(body)
		if err != nil {
			return err
		}
		ca.Stats = Stats{
			Scheme:            bmeh.Scheme(s.Scheme),
			Dims:              int(s.Dims),
			Width:             int(s.Width),
			DirectoryLevels:   int(s.DirectoryLevels),
			Records:           s.Records,
			Reads:             s.Reads,
			Writes:            s.Writes,
			DirectoryElements: s.DirectoryElements,
			DataPages:         int(s.DataPages),
			DirectoryPages:    int(s.DirectoryPages),
			LoadFactor:        s.LoadFactor,
			Role:              s.Role,
			Replicas:          int(s.Replicas),
			CommitSeq:         s.CommitSeq,
			PrimarySeq:        s.PrimarySeq,
			COW:               s.COW != 0,
			Epoch:             s.Epoch,
			PinnedEpochs:      int(s.PinnedEpochs),
			ReclaimablePages:  int(s.ReclaimablePages),
			Clustered:         s.Clustered != 0,
			ShardID:           int(s.ShardID),
			ShardLo:           s.ShardLo,
			ShardHi:           s.ShardHi,
			ShardMapEpoch:     s.ShardMapEpoch,
		}
	case wire.OpShardMap:
		blob, err := wire.DecodeShardMapRespBody(body)
		if err != nil {
			return err
		}
		ca.ShardMapBlob = append([]byte(nil), blob...)
	case wire.OpShardMapSet:
		e, err := wire.DecodeShardEpochRespBody(body)
		if err != nil {
			return err
		}
		ca.ShardEpoch = e
	case wire.OpShardMedian:
		m, n, err := wire.DecodeShardMedianRespBody(body)
		if err != nil {
			return err
		}
		ca.Median, ca.MedianOwned = m, n
	}
	return nil
}

// ShardMap fetches the node's current shard map, or ErrNoShardMap when
// the node is not part of a cluster. Idempotent; served by any node.
func (c *Client) ShardMap() (*cluster.Map, error) {
	call, err := c.roundTrip(wire.OpShardMap, nil, false, true)
	if err != nil {
		return nil, err
	}
	if call.ShardMapBlob == nil {
		return nil, ErrNoShardMap
	}
	return cluster.DecodeMap(call.ShardMapBlob)
}

// SetShardMap pushes a shard map to the connected node, telling it that
// it is shard id in that map. The node adopts the map only if its epoch
// is newer than what it holds; either way the returned epoch is the one
// now in force there. Control-plane: used by the cluster launcher and
// the split controller.
func (c *Client) SetShardMap(id uint32, m *cluster.Map) (epoch uint64, err error) {
	payload := wire.AppendShardMapSetReq(nil, id, cluster.AppendMap(nil, m))
	call, err := c.roundTrip(wire.OpShardMapSet, payload, true, true)
	if err != nil {
		return 0, err
	}
	return call.ShardEpoch, nil
}

// ShardMedian asks the node for the median pseudo-key prefix of its
// owned records — the boundary a balanced split would use — and how
// many owned records that median bisects.
func (c *Client) ShardMedian() (median, owned uint64, err error) {
	call, err := c.roundTrip(wire.OpShardMedian, nil, true, true)
	if err != nil {
		return 0, 0, err
	}
	return call.Median, call.MedianOwned, nil
}

// ShardFence fences writes to the prefix range [lo, hi) on the
// connected node (hi 0 meaning end of space); lo == hi clears the
// fence. Fenced writes answer ErrWrongShard while reads keep serving —
// the split protocol's hand-off latch.
func (c *Client) ShardFence(lo, hi uint64) error {
	_, err := c.roundTrip(wire.OpShardFence, wire.AppendShardFenceReq(nil, lo, hi), true, true)
	return err
}
