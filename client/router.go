package client

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bmeh"
	"bmeh/internal/cluster"
	"bmeh/internal/wire"
)

// Router is a cluster-aware client: it holds a cached shard map, routes
// point operations (Get, Put, Delete, Batch) to the shard owning each
// key's pseudo-key prefix, and fans Range queries out across every
// overlapping shard, merging the per-shard streams back into global
// pseudo-key order.
//
// The cached map is invalidated by epoch: any node answering
// StatusWrongShard reveals its own epoch, and the router refreshes its
// map from the cluster before retrying. A server mid-split may answer
// WrongShard at the *same* epoch (the write fence); the router then
// backs off and retries until the epoch flips, so a correctly executed
// split costs clients added latency but zero failed requests.
//
// Safe for concurrent use. Per-shard connections are pooled Clients
// (primary + replicas with lag-aware read routing), created lazily and
// kept for the Router's lifetime.
type Router struct {
	opts  Options
	seeds []string

	mu    sync.RWMutex
	m     *cluster.Map
	dims  int
	width int

	cmu     sync.Mutex
	clients map[string]*Client // keyed by shard primary address

	closed atomic.Bool
}

// RouterRetries is how many map-refresh-and-retry rounds a routed
// operation attempts after WrongShard answers before giving up — enough
// to ride out a split hand-off at the default backoff.
const RouterRetries = 24

// DialRouter connects to a cluster through any reachable seed node,
// fetches the shard map and key geometry, and returns a Router. Seeds
// are only needed for bootstrap and as a refresh fallback; routing uses
// the addresses in the map itself.
func DialRouter(seeds []string, opts Options) (*Router, error) {
	if len(seeds) == 0 {
		return nil, errors.New("client: DialRouter needs at least one seed address")
	}
	opts = opts.withDefaults()
	r := &Router{opts: opts, seeds: append([]string(nil), seeds...), clients: make(map[string]*Client)}
	var lastErr error
	for _, addr := range seeds {
		cl, err := Dial(addr, r.leafOptions())
		if err != nil {
			lastErr = err
			continue
		}
		m, merr := cl.ShardMap()
		st, serr := cl.Stats()
		cl.Close()
		if merr != nil {
			lastErr = fmt.Errorf("%s: %w", addr, merr)
			continue
		}
		if serr != nil {
			lastErr = fmt.Errorf("%s: %w", addr, serr)
			continue
		}
		r.m, r.dims, r.width = m, st.Dims, st.Width
		return r, nil
	}
	return nil, lastErr
}

// leafOptions are the Options used for per-shard Clients: same tuning,
// but replica lists come from the shard map, not Options.Replicas.
func (r *Router) leafOptions() Options {
	o := r.opts
	o.Replicas = nil
	return o
}

// Close tears down every per-shard client.
func (r *Router) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	r.cmu.Lock()
	defer r.cmu.Unlock()
	for _, cl := range r.clients {
		cl.Close()
	}
	r.clients = nil
	return nil
}

// Map returns the router's current cached shard map.
func (r *Router) Map() *cluster.Map {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m
}

// Geometry returns the cluster's key geometry (dims, component width).
func (r *Router) Geometry() (dims, width int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.dims, r.width
}

// shardClient returns (lazily dialing) the pooled client for shard i of
// map m. Clients are cached by primary address and survive map flips —
// a donor shard keeps its client, a new shard gets a fresh one.
func (r *Router) shardClient(m *cluster.Map, i int) (*Client, error) {
	if r.closed.Load() {
		return nil, ErrClosed
	}
	node := m.Shards[i]
	r.cmu.Lock()
	defer r.cmu.Unlock()
	if r.clients == nil {
		return nil, ErrClosed
	}
	if cl, ok := r.clients[node.Primary]; ok {
		return cl, nil
	}
	cl, err := DialCluster(node.Primary, node.Replicas, r.leafOptions())
	if err != nil {
		return nil, err
	}
	r.clients[node.Primary] = cl
	return cl, nil
}

// RefreshMap polls the cluster (every mapped primary, then the seeds)
// for a shard map newer than the cached one and adopts the newest
// found. It returns the epoch now cached.
func (r *Router) RefreshMap() uint64 {
	r.mu.RLock()
	cur := r.m
	r.mu.RUnlock()
	var addrs []string
	if cur != nil {
		for _, n := range cur.Shards {
			addrs = append(addrs, n.Primary)
		}
	}
	addrs = append(addrs, r.seeds...)
	best := cur
	for _, addr := range addrs {
		m, err := r.fetchMap(addr)
		if err != nil {
			continue
		}
		if best == nil || m.Epoch > best.Epoch {
			best = m
		}
	}
	if best == nil {
		return 0
	}
	r.mu.Lock()
	if r.m == nil || best.Epoch > r.m.Epoch {
		r.m = best
	}
	epoch := r.m.Epoch
	r.mu.Unlock()
	return epoch
}

// fetchMap asks one node for its shard map, reusing a cached shard
// client when the address maps to one, dialing a throwaway connection
// otherwise (seed nodes need not be in the map).
func (r *Router) fetchMap(addr string) (*cluster.Map, error) {
	r.cmu.Lock()
	cl := (*Client)(nil)
	if r.clients != nil {
		cl = r.clients[addr]
	}
	r.cmu.Unlock()
	if cl != nil {
		return cl.ShardMap()
	}
	tmp, err := Dial(addr, r.leafOptions())
	if err != nil {
		return nil, err
	}
	defer tmp.Close()
	return tmp.ShardMap()
}

// route runs op against the shard owning key, refreshing the map and
// retrying on WrongShard: immediately when the refresh advanced the
// epoch (stale map), with backoff when it did not (a fence mid-split —
// the flip is coming). Transport errors pass through op's own
// semantics untouched.
func (r *Router) route(key bmeh.Key, op func(cl *Client) error) error {
	var lastErr error
	for attempt := 0; attempt <= RouterRetries; attempt++ {
		r.mu.RLock()
		m, dims, width := r.m, r.dims, r.width
		r.mu.RUnlock()
		if m == nil {
			return ErrNoShardMap
		}
		i := m.ShardFor(cluster.Prefix(key, dims, width))
		cl, err := r.shardClient(m, i)
		if err == nil {
			err = op(cl)
		}
		if err == nil || !errors.Is(err, ErrWrongShard) {
			return err
		}
		lastErr = err
		before := m.Epoch
		after := r.RefreshMap()
		if after <= before {
			// Same epoch everywhere: the range is fenced for a hand-off
			// that has not flipped yet. Wait for it.
			time.Sleep(backoffDelay(r.opts.RedialBackoff, r.opts.RedialBackoffMax, attempt+1))
		}
	}
	return lastErr
}

// Get returns the value under key from the shard that owns it.
func (r *Router) Get(key bmeh.Key) (uint64, bool, error) {
	var v uint64
	var ok bool
	err := r.route(key, func(cl *Client) error {
		var err error
		v, ok, err = cl.Get(key)
		return err
	})
	return v, ok, err
}

// Put stores value under key on the shard that owns it.
func (r *Router) Put(key bmeh.Key, value uint64) error {
	return r.route(key, func(cl *Client) error { return cl.Put(key, value) })
}

// Delete removes key from the shard that owns it.
func (r *Router) Delete(key bmeh.Key) (bool, error) {
	var ok bool
	err := r.route(key, func(cl *Client) error {
		var err error
		ok, err = cl.Delete(key)
		return err
	})
	return ok, err
}

// Batch splits kvs by owning shard and issues one BATCH per shard,
// returning the total inserted. Shard sub-batches whose server answers
// WrongShard are re-split against a refreshed map and retried; each
// sub-batch is all-or-nothing on the server, so a retry never
// double-applies.
func (r *Router) Batch(kvs []bmeh.KV) (int, error) {
	pendingKVs := kvs
	inserted := 0
	var lastErr error
	for attempt := 0; attempt <= RouterRetries && len(pendingKVs) > 0; attempt++ {
		r.mu.RLock()
		m, dims, width := r.m, r.dims, r.width
		r.mu.RUnlock()
		if m == nil {
			return inserted, ErrNoShardMap
		}
		byShard := make(map[int][]bmeh.KV)
		for _, kv := range pendingKVs {
			i := m.ShardFor(cluster.Prefix(kv.Key, dims, width))
			byShard[i] = append(byShard[i], kv)
		}
		var retry []bmeh.KV
		lastErr = nil
		for i, sub := range byShard {
			cl, err := r.shardClient(m, i)
			if err == nil {
				var n int
				n, err = cl.Batch(sub)
				inserted += n
			}
			switch {
			case err == nil:
			case errors.Is(err, ErrWrongShard):
				retry = append(retry, sub...)
				lastErr = err
			default:
				return inserted, err
			}
		}
		pendingKVs = retry
		if len(pendingKVs) == 0 {
			return inserted, nil
		}
		before := m.Epoch
		if r.RefreshMap() <= before {
			time.Sleep(backoffDelay(r.opts.RedialBackoff, r.opts.RedialBackoffMax, attempt+1))
		}
	}
	return inserted, lastErr
}

// Range returns up to limit records in the axis-aligned box [lo, hi],
// gathered from every shard whose pseudo-key range the box's corner
// prefixes span and merged back into global pseudo-key order (limit ≤ 0
// accepts the servers' caps). The second result is true when any shard
// stopped early or the merged stream was truncated to limit — more
// records may exist in the box.
//
// Partial-match queries — some dimensions pinned, others spanning their
// whole domain — are Range queries whose corner prefixes straddle many
// (often all) shards; the fan-out and merge make them transparent.
func (r *Router) Range(lo, hi bmeh.Key, limit int) ([]bmeh.KV, bool, error) {
	if limit < 0 {
		limit = 0
	}
	var lastErr error
	for attempt := 0; attempt <= RouterRetries; attempt++ {
		r.mu.RLock()
		m, dims, width := r.m, r.dims, r.width
		r.mu.RUnlock()
		if m == nil {
			return nil, false, ErrNoShardMap
		}
		// Morton interleaving is monotone per coordinate, so the corner
		// prefixes bound every prefix in the box: only shards overlapping
		// [Prefix(lo), Prefix(hi)] can hold matches.
		shards := m.Overlapping(cluster.Prefix(lo, dims, width), cluster.Prefix(hi, dims, width))
		type result struct {
			idx  int
			kvs  []bmeh.KV
			more bool
			err  error
		}
		results := make([]result, len(shards))
		var wg sync.WaitGroup
		for k, i := range shards {
			wg.Add(1)
			go func(k, i int) {
				defer wg.Done()
				cl, err := r.shardClient(m, i)
				if err != nil {
					results[k] = result{idx: i, err: err}
					return
				}
				kvs, more, err := cl.Range(lo, hi, limit)
				results[k] = result{idx: i, kvs: kvs, more: more, err: err}
			}(k, i)
		}
		wg.Wait()

		wrongShard := false
		more := false
		lists := make([][]wire.KV, 0, len(results))
		for _, res := range results {
			switch {
			case res.err == nil:
				more = more || res.more
				enc := make([]wire.KV, len(res.kvs))
				for j, kv := range res.kvs {
					enc[j] = wire.KV{Key: kv.Key, Value: kv.Value}
				}
				// A shard streams its box matches in tree order, which is
				// pseudo-key order across pages but unordered within one
				// (data pages are hash buckets); sort before the merge,
				// whose inputs must be ordered.
				cluster.SortKVs(enc, dims, width)
				lists = append(lists, enc)
			case errors.Is(res.err, ErrWrongShard):
				wrongShard = true
				lastErr = res.err
			default:
				return nil, false, res.err
			}
		}
		if wrongShard {
			// Some shard's view moved under us; a merged result would mix
			// epochs, so refresh and rerun the whole query.
			before := m.Epoch
			if r.RefreshMap() <= before {
				time.Sleep(backoffDelay(r.opts.RedialBackoff, r.opts.RedialBackoffMax, attempt+1))
			}
			continue
		}
		merged := cluster.MergeOrdered(lists, dims, width, limit)
		if limit > 0 && len(merged) == limit {
			// Truncation anywhere (server cap or our limit) means more may
			// exist; only an untruncated full merge is definitive.
			total := 0
			for _, l := range lists {
				total += len(l)
			}
			more = more || total > limit
		}
		out := make([]bmeh.KV, len(merged))
		for j, kv := range merged {
			out[j] = bmeh.KV{Key: bmeh.Key(kv.Key), Value: kv.Value}
		}
		return out, more, nil
	}
	return nil, false, lastErr
}

// ShardStats fetches Stats from every shard in map order — the
// aggregate view an operator dashboard or bench harness wants.
func (r *Router) ShardStats() ([]Stats, error) {
	r.mu.RLock()
	m := r.m
	r.mu.RUnlock()
	if m == nil {
		return nil, ErrNoShardMap
	}
	out := make([]Stats, m.NumShards())
	var wg sync.WaitGroup
	errs := make([]error, m.NumShards())
	for i := 0; i < m.NumShards(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := r.shardClient(m, i)
			if err != nil {
				errs[i] = err
				return
			}
			out[i], errs[i] = cl.Stats()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Len sums Records across shards (one consistent-ish aggregate; each
// shard's count is its own instant).
func (r *Router) Len() (uint64, error) {
	stats, err := r.ShardStats()
	if err != nil {
		return 0, err
	}
	var n uint64
	for _, s := range stats {
		n += s.Records
	}
	return n, nil
}

// SortByShard groups kvs by the shard that owns each key under the
// router's current map, returned as (shard index, sub-batch) pairs in
// shard order. Exposed for bulk loaders that want to stream per-shard.
func (r *Router) SortByShard(kvs []bmeh.KV) map[int][]bmeh.KV {
	r.mu.RLock()
	m, dims, width := r.m, r.dims, r.width
	r.mu.RUnlock()
	out := make(map[int][]bmeh.KV)
	if m == nil {
		return out
	}
	for _, kv := range kvs {
		i := m.ShardFor(cluster.Prefix(kv.Key, dims, width))
		out[i] = append(out[i], kv)
	}
	return out
}

// Shards returns the router's current shard count.
func (r *Router) Shards() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.m == nil {
		return 0
	}
	return r.m.NumShards()
}
