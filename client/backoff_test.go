package client

import (
	"testing"
	"time"
)

// TestBackoffDelayBounds: the jittered delay always lands in
// (0, min(base·2^(fails-1), max)] — never zero, never past the cap.
func TestBackoffDelayBounds(t *testing.T) {
	const base, max = 50 * time.Millisecond, 2 * time.Second
	for fails := 1; fails <= 12; fails++ {
		cap := base
		for i := 1; i < fails && cap < max; i++ {
			cap *= 2
		}
		if cap > max {
			cap = max
		}
		for trial := 0; trial < 200; trial++ {
			d := backoffDelay(base, max, fails)
			if d <= 0 {
				t.Fatalf("fails=%d: delay %v is not positive", fails, d)
			}
			if d > cap {
				t.Fatalf("fails=%d: delay %v exceeds cap %v", fails, d, cap)
			}
		}
	}
}

// TestBackoffDelayJitters: the delay is not a constant — full jitter
// must spread attempts out.
func TestBackoffDelayJitters(t *testing.T) {
	seen := map[time.Duration]bool{}
	for i := 0; i < 64; i++ {
		seen[backoffDelay(time.Second, time.Second, 1)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("64 draws produced %d distinct delays, want jitter", len(seen))
	}
}
