package client_test

// Router boundary behaviour against a real in-process cluster: keys
// exactly on a shard boundary, the extremes of the first and last
// ranges, transparent retry on a stale cached epoch, and partial-match
// queries whose fan-out spans every shard. Run with -race: the router
// shares its map and client caches across goroutines.

import (
	"testing"

	"bmeh"
	"bmeh/client"
	"bmeh/internal/cluster"
	"bmeh/internal/cluster/local"
)

// boundaryCluster starts a 4-shard cluster whose Uniform bounds are
// 0x4000…, 0x8000…, 0xc000… and returns a router on it.
func boundaryCluster(t *testing.T) (*local.Cluster, *client.Router) {
	t.Helper()
	c, err := local.Start(t.TempDir(), local.Options{Shards: 4, Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	r, err := client.DialRouter(c.Seeds(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return c, r
}

// keyWithPrefix builds the 2-d key whose Morton prefix is exactly p
// (dims=2, width=32): de-interleave p's even bits into y, odd into x.
func keyWithPrefix(p uint64) bmeh.Key {
	var x, y uint64
	for i := 0; i < 32; i++ {
		x |= ((p >> uint(63-2*i)) & 1) << uint(31-i)
		y |= ((p >> uint(62-2*i)) & 1) << uint(31-i)
	}
	return bmeh.Key{x, y}
}

// TestRouterBoundaryKeys: a key whose prefix equals a split point
// belongs to the upper shard, its immediate predecessor to the lower —
// and the router's placement agrees with the servers' enforcement.
func TestRouterBoundaryKeys(t *testing.T) {
	_, r := boundaryCluster(t)
	m := r.Map()
	dims, width := r.Geometry()
	if len(m.Bounds) != 3 {
		t.Fatalf("bounds = %v, want 3 split points", m.Bounds)
	}
	val := uint64(1)
	for bi, b := range m.Bounds {
		on := keyWithPrefix(b)        // exactly on the boundary
		below := keyWithPrefix(b - 1) // last key of the lower range
		if got := cluster.Prefix(on, dims, width); got != b {
			t.Fatalf("keyWithPrefix(%#x) has prefix %#x", b, got)
		}
		if got := m.ShardFor(cluster.Prefix(on, dims, width)); got != bi+1 {
			t.Fatalf("boundary %#x routed to shard %d, want %d", b, got, bi+1)
		}
		if got := m.ShardFor(cluster.Prefix(below, dims, width)); got != bi {
			t.Fatalf("boundary-1 %#x routed to shard %d, want %d", b-1, got, bi)
		}
		for _, k := range []bmeh.Key{on, below} {
			if err := r.Put(k, val); err != nil {
				t.Fatalf("put %v: %v", k, err)
			}
			v, ok, err := r.Get(k)
			if err != nil || !ok || v != val {
				t.Fatalf("get %v: v=%d ok=%v err=%v", k, v, ok, err)
			}
			val++
		}
	}
	// Each boundary pair straddles two shards: 6 records over 4 shards,
	// none lost.
	if n, err := r.Len(); err != nil || n != 6 {
		t.Fatalf("Len = %d (%v), want 6", n, err)
	}
}

// TestRouterRangeExtremes: the very first and very last representable
// keys round-trip, and ranges clamped to the first/last shard ranges
// return exactly their shard's contents.
func TestRouterRangeExtremes(t *testing.T) {
	_, r := boundaryCluster(t)
	first := bmeh.Key{0, 0}                // prefix 0x0000… — first shard
	last := bmeh.Key{1<<32 - 1, 1<<32 - 1} // prefix 0xffff… — last shard
	if err := r.Put(first, 10); err != nil {
		t.Fatal(err)
	}
	if err := r.Put(last, 20); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := r.Get(first); err != nil || !ok || v != 10 {
		t.Fatalf("get first: %d %v %v", v, ok, err)
	}
	if v, ok, err := r.Get(last); err != nil || !ok || v != 20 {
		t.Fatalf("get last: %d %v %v", v, ok, err)
	}
	// A one-point box at each extreme touches exactly one shard.
	kvs, _, err := r.Range(first, first, 0)
	if err != nil || len(kvs) != 1 || kvs[0].Value != 10 {
		t.Fatalf("range at first: %v %v", kvs, err)
	}
	kvs, _, err = r.Range(last, last, 0)
	if err != nil || len(kvs) != 1 || kvs[0].Value != 20 {
		t.Fatalf("range at last: %v %v", kvs, err)
	}
	// The full box spans all four shards and finds both extremes.
	kvs, _, err = r.Range(first, last, 0)
	if err != nil || len(kvs) != 2 {
		t.Fatalf("full range: %v %v", kvs, err)
	}
	if kvs[0].Value != 10 || kvs[1].Value != 20 {
		t.Fatalf("full range out of order: %v", kvs)
	}
}

// TestRouterStaleEpochRetry: a split performed behind the router's back
// leaves it with a stale cached epoch; the next operations on moved keys
// must succeed transparently (WrongShard → refresh → retry) and the
// router must end up on the new epoch.
func TestRouterStaleEpochRetry(t *testing.T) {
	c, err := local.Start(t.TempDir(), local.Options{Shards: 1, Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r, err := client.DialRouter(c.Seeds(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	keys := make([]bmeh.Key, 0, 256)
	for i := 0; i < 256; i++ {
		keys = append(keys, keyWithPrefix(uint64(i)<<56|uint64(i*2654435761)))
	}
	for i, k := range keys {
		if err := r.Put(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	staleEpoch := r.Map().Epoch

	if err := c.Split(0); err != nil {
		t.Fatalf("split: %v", err)
	}
	if r.Map().Epoch != staleEpoch {
		t.Fatal("router learned the new epoch without traffic — test premise broken")
	}

	// Reads and writes on moved keys ride the stale map transparently.
	for i, k := range keys {
		v, ok, err := r.Get(k)
		if err != nil || !ok || v != uint64(i) {
			t.Fatalf("stale get %d: v=%d ok=%v err=%v", i, v, ok, err)
		}
	}
	movedHigh := keyWithPrefix(^uint64(0) - 5)
	if err := r.Put(movedHigh, 777); err != nil {
		t.Fatalf("stale put: %v", err)
	}
	if v, ok, _ := r.Get(movedHigh); !ok || v != 777 {
		t.Fatalf("stale put lost: %d %v", v, ok)
	}
	if got := r.Map().Epoch; got <= staleEpoch {
		t.Fatalf("router still on epoch %d after WrongShard traffic", got)
	}
}

// TestRouterPartialMatchAllShards: a partial-match query (x pinned to a
// narrow band, y spanning its whole domain) straddles every shard; the
// fan-out must visit all of them and the merge must return exactly the
// matching records in pseudo-key order.
func TestRouterPartialMatchAllShards(t *testing.T) {
	_, r := boundaryCluster(t)
	m := r.Map()
	dims, width := r.Geometry()

	// Overlap spans every shard only if both top prefix bits vary inside
	// the box: bit 63 is x's MSB (x is unbounded), bit 62 is y's MSB —
	// so the y band must straddle y's midpoint. A band pinned strictly
	// below it could never match shard 2 or 3, and the router's pruning
	// would (correctly) skip them.
	const bandLo, bandHi = uint64(0x7fff_ff00), uint64(0x8000_00ff)
	want := 0
	val := uint64(0)
	for i := 0; i < 64; i++ {
		x := uint64(i) << 26      // walk x's high bits → both prefix halves
		y := bandLo + uint64(i*8) // stays inside the band
		if err := r.Put(bmeh.Key{x, y}, val); err != nil {
			t.Fatal(err)
		}
		val++
		want++
	}
	// Decoys outside the band.
	for i := 0; i < 64; i++ {
		if err := r.Put(bmeh.Key{uint64(i) << 26, uint64(i) << 20}, 9000+uint64(i)); err != nil {
			t.Fatal(err)
		}
	}

	lo := bmeh.Key{0, bandLo}
	hi := bmeh.Key{1<<32 - 1, bandHi}
	shards := m.Overlapping(cluster.Prefix(lo, dims, width), cluster.Prefix(hi, dims, width))
	if len(shards) != m.NumShards() {
		t.Fatalf("partial-match box overlaps %d of %d shards — want all (y unbounded)", len(shards), m.NumShards())
	}
	kvs, more, err := r.Range(lo, hi, 0)
	if err != nil || more {
		t.Fatalf("partial match: more=%v err=%v", more, err)
	}
	if len(kvs) != want {
		t.Fatalf("partial match found %d records, want %d", len(kvs), want)
	}
	for i, kv := range kvs {
		if kv.Key[1] < bandLo || kv.Key[1] > bandHi {
			t.Fatalf("record %d outside the y band: %v", i, kv.Key)
		}
		if i > 0 && cluster.CompareKeys(kvs[i-1].Key, kv.Key, dims, width) >= 0 {
			t.Fatalf("partial-match output out of pseudo-key order at %d", i)
		}
	}
}
