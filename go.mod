module bmeh

go 1.22
