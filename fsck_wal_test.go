package bmeh

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bmeh/internal/pagestore"
)

// craftWAL builds a .wal image committing the given frames, optionally
// followed by torn junk, and installs it next to path.
func craftWAL(t *testing.T, path string, pageSize int, frames []pagestore.Frame, junk []byte) {
	t.Helper()
	mf := pagestore.NewMemFile()
	w, err := pagestore.CreateWAL(mf, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) > 0 {
		if err := w.Commit(frames); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(path+".wal", append(mf.Bytes(), junk...), 0o644); err != nil {
		t.Fatal(err)
	}
}

// walTestIndex creates a populated, cleanly closed index and returns its
// path plus the durable image and kind of page 1.
func walTestIndex(t *testing.T) (path string, pageSize int, page1 []byte, kind1 pagestore.Kind) {
	t.Helper()
	path = filepath.Join(t.TempDir(), "ix.bmeh")
	ix, err := Create(path, Options{Dims: 2, PageCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range randKeys(300, 2, 31) {
		if err := ix.Insert(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	fd, err := pagestore.OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	pageSize = fd.PageSize()
	page1, kind1, err = fd.RawPage(1)
	if err != nil {
		t.Fatal(err)
	}
	page1 = append([]byte(nil), page1...)
	if err := fd.Close(); err != nil {
		t.Fatal(err)
	}
	return path, pageSize, page1, kind1
}

// TestFsckWALChainClean: a committed WAL batch whose frame matches the
// applied page state is reported (batch/frame counts) with no problems.
func TestFsckWALChainClean(t *testing.T) {
	path, pageSize, page1, kind1 := walTestIndex(t)
	craftWAL(t, path, pageSize, []pagestore.Frame{{ID: 1, Kind: kind1, Data: page1}}, nil)
	rep, err := Fsck(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("fsck with clean WAL chain: %v", rep.Problems)
	}
	if rep.WALBatches != 1 || rep.WALFrames != 1 || rep.WALTailBytes != 0 {
		t.Fatalf("WAL accounting: batches=%d frames=%d tail=%d, want 1/1/0",
			rep.WALBatches, rep.WALFrames, rep.WALTailBytes)
	}
}

// TestFsckWALTornTail: garbage after the last commit is a torn write —
// counted, not a problem (recovery discards it).
func TestFsckWALTornTail(t *testing.T) {
	path, pageSize, page1, kind1 := walTestIndex(t)
	junk := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF}
	craftWAL(t, path, pageSize, []pagestore.Frame{{ID: 1, Kind: kind1, Data: page1}}, junk)
	rep, err := Fsck(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("fsck with torn WAL tail: %v", rep.Problems)
	}
	if rep.WALBatches != 1 || rep.WALTailBytes != len(junk) {
		t.Fatalf("WAL accounting: batches=%d tail=%d, want 1/%d",
			rep.WALBatches, rep.WALTailBytes, len(junk))
	}
}

// TestFsckWALChainOutOfRange: a committed frame journaling a page the
// store does not have is flagged — the chain and the store disagree.
func TestFsckWALChainOutOfRange(t *testing.T) {
	path, pageSize, page1, kind1 := walTestIndex(t)
	craftWAL(t, path, pageSize, []pagestore.Frame{{ID: 4096, Kind: kind1, Data: page1}}, nil)
	rep, err := Fsck(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("fsck accepted a WAL frame beyond the store's page count")
	}
	found := false
	for _, p := range rep.Problems {
		if strings.Contains(p, "WAL chain") && strings.Contains(p, "unreadable") {
			found = true
		}
	}
	if !found {
		t.Fatalf("problems lack the WAL chain diagnosis: %v", rep.Problems)
	}
}
