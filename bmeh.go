// Package bmeh is a multidimensional order-preserving extendible hashing
// library, a from-scratch implementation of Otoo's Balanced
// Multidimensional Extendible Hash Tree (PODS 1986) together with the two
// baseline organizations the paper evaluates against.
//
// An Index stores records keyed by d-dimensional vectors and supports
// exact-match lookup, insertion, deletion, and orthogonal (partial-)range
// queries over an order-preserving rectilinear partitioning of the key
// space. Three directory organizations are available:
//
//   - SchemeBMEH (default): the paper's contribution — a height-balanced
//     tree of fixed-size directory nodes. Directory growth is near linear
//     in the number of keys regardless of skew, and an exact-match lookup
//     touches exactly (levels−1) directory pages plus one data page, with
//     the root held in memory (≤ 3 page reads for directories up to 2^27
//     elements at the default node size).
//   - SchemeMDEH: the classic one-level directory. Lookups cost exactly
//     two page reads, but the directory can grow super-linearly (and
//     insertion cost explode) under skewed keys.
//   - SchemeMEH: a simpler multilevel directory growing from the root
//     down; shallow for cold regions but unbalanced and space-hungry.
//
// Keys are vectors of unsigned components compared numerically; package
// users index arbitrary attribute types by encoding them order-preservingly
// with the helpers in keys.go (signed integers, floats, bounded reals,
// string prefixes).
package bmeh

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bmeh/internal/bitkey"
	"bmeh/internal/core"
	"bmeh/internal/mdeh"
	"bmeh/internal/mehtree"
	"bmeh/internal/pagestore"
	"bmeh/internal/params"
)

// Scheme selects the directory organization of an Index.
type Scheme int

const (
	// SchemeBMEH is the balanced multidimensional extendible hash tree.
	SchemeBMEH Scheme = iota
	// SchemeMDEH is multidimensional extendible hashing with a one-level
	// directory.
	SchemeMDEH
	// SchemeMEH is the downward-growing multidimensional extendible hash
	// tree.
	SchemeMEH
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case SchemeBMEH:
		return "BMEH-tree"
	case SchemeMDEH:
		return "MDEH"
	case SchemeMEH:
		return "MEH-tree"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Backend selects the storage engine of a file-backed Index.
type Backend int

const (
	// BackendFile (default) is the pread/pwrite engine: page reads copy
	// through a pooled buffer (and the optional CacheFrames byte pool).
	BackendFile Backend = iota
	// BackendMmap maps the page file into memory and serves reads as
	// zero-copy slices straight out of the mapping, with msync at the
	// commit barrier. The on-disk format and crash-consistency protocol
	// are identical to BackendFile — a file created by one backend opens
	// under the other — but the byte pool is bypassed entirely (the OS
	// page cache is the byte cache), so CacheFrames is ignored. On
	// platforms without mmap support it degrades to the pread path.
	BackendMmap
)

// MmapAvailable reports whether this platform actually maps page files
// into memory. Where false, BackendMmap still works — it runs on the
// pread fallback and ReadSlice-equivalent reads return verified copies.
func MmapAvailable() bool { return pagestore.MmapSupported }

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case BackendFile:
		return "file"
	case BackendMmap:
		return "mmap"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// WriteMode selects how the BMEH core commits mutations.
type WriteMode int

const (
	// WriteModeLatched (default) mutates pages in place under crabbed
	// latches; readers validate against a structure version and retry
	// around restructurings.
	WriteModeLatched WriteMode = iota
	// WriteModeCOW routes every mutation through shadow pages and commits
	// it with a single atomic root swap. Committed pages are never
	// rewritten in place, which is what makes Snapshot possible: a reader
	// pins a root and reads it latch-free while writers keep committing.
	// Superseded pages are reclaimed by epoch once no snapshot can reach
	// them. Requires SchemeBMEH.
	WriteModeCOW
)

// String implements fmt.Stringer.
func (m WriteMode) String() string {
	switch m {
	case WriteModeLatched:
		return "latched"
	case WriteModeCOW:
		return "cow"
	default:
		return fmt.Sprintf("WriteMode(%d)", int(m))
	}
}

// Key is a d-dimensional key vector. Components compare numerically; use
// the encoding helpers to map other attribute types order-preservingly.
type Key []uint64

// KV is one key/value pair, the unit of batched insertion.
type KV struct {
	Key   Key
	Value uint64
}

// ErrDuplicate is returned by Insert when the key is already present.
var ErrDuplicate = errors.New("bmeh: duplicate key")

// Options configures an Index.
type Options struct {
	// Scheme selects the directory organization (default SchemeBMEH).
	Scheme Scheme
	// Dims is the key dimensionality d (required, 1..8).
	Dims int
	// PageCapacity is the data page capacity b in records (default 32).
	PageCapacity int
	// NodeBits is ξ_j, the per-dimension address bits of a directory node
	// (tree schemes; also sizes MDEH's directory pages). Default: 6 bits
	// split evenly across dimensions, the paper's configuration.
	// Setting all entries to 1 yields the paper's "balanced binary
	// quadtree/octtree" variant.
	NodeBits []int
	// Width is the significant bits per key component (default 32, max 64).
	Width int
	// CacheFrames enables a write-back page cache of that many frames
	// between the index and its store (0 disables caching). The cache is
	// lock-striped with CLOCK eviction, so concurrent lookups on a warm
	// cache do not serialize. With a cache, Stats reports physical I/O
	// only; call Sync to force dirty pages out. Ignored by BackendMmap,
	// which bypasses the byte pool (the OS page cache fills that role).
	CacheFrames int
	// Backend selects the storage engine for file-backed indexes
	// (default BackendFile); in-memory indexes (New) ignore it.
	Backend Backend
	// SyncPolicy enables commit coalescing (group commit) for Sync: the
	// zero value commits each Sync individually; a non-zero policy batches
	// concurrent and back-to-back Sync calls into one WAL commit + fsync
	// pair. See SyncPolicy.
	SyncPolicy SyncPolicy
	// WriteMode selects the mutation protocol (default WriteModeLatched).
	// WriteModeCOW enables Snapshot at the cost of page copies on the
	// write path; it requires SchemeBMEH. Like Backend, the mode is a
	// property of the process, not the file — either mode opens any index
	// file.
	WriteMode WriteMode
	// SnapshotMaxPinAge, when positive, bounds how long a Snapshot may
	// pin its epoch (WriteModeCOW only). Pins older than the bound are
	// force-released by the next reclamation pass; reads on a released
	// snapshot fail with ErrSnapshotReleased, and each release counts in
	// SnapshotStats.ForcedReleases. This is a guard against abandoned
	// pins — a snapshot leaked without Close would otherwise hold every
	// page version retired since it was taken. Set it well above the
	// longest legitimate snapshot read (a backup stream, a full scan):
	// a snapshot actively reading past the bound fails mid-read. Zero
	// (the default) means pins never expire.
	SnapshotMaxPinAge time.Duration
}

// SyncPolicy configures group commit for Index.Sync. Durability semantics
// are unchanged — when Sync returns, everything the index acknowledged
// before the call is durable — but coalesced Sync calls share one
// write-ahead-log commit and fsync pair instead of paying one each.
type SyncPolicy struct {
	// Interval is how long the first Sync caller (the commit leader)
	// holds the batch open for more callers to join. Zero adds no
	// latency: only callers arriving while a commit is already in flight
	// coalesce.
	Interval time.Duration
	// MaxBatch closes a batch early once this many Sync callers have
	// joined. Zero means unbounded.
	MaxBatch int
}

// Enabled reports whether the policy asks for any coalescing.
func (p SyncPolicy) Enabled() bool { return p.Interval > 0 || p.MaxBatch > 0 }

// PoolStats is a snapshot of the page cache's counters (CacheFrames > 0).
type PoolStats struct {
	Hits       uint64 // lookups served from a resident frame
	Misses     uint64 // lookups that faulted a page in from the store
	Evictions  uint64 // frames reclaimed by the CLOCK sweep
	Writebacks uint64 // dirty frames written back on eviction or flush
	Shards     int    // lock stripes in the pool
	Capacity   int    // total frame slots
}

// HitRatio returns Hits / (Hits + Misses), or 0 before any access.
func (s PoolStats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

func (o Options) params() (params.Params, error) {
	if o.Dims == 0 {
		return params.Params{}, errors.New("bmeh: Options.Dims is required")
	}
	prm := params.Default(o.Dims, 32)
	if o.PageCapacity != 0 {
		prm.Capacity = o.PageCapacity
	}
	if o.Width != 0 {
		prm.Width = o.Width
	}
	if o.NodeBits != nil {
		prm.Xi = append([]int(nil), o.NodeBits...)
	}
	return prm, prm.Validate()
}

// impl is the common surface of the three scheme implementations.
type impl interface {
	Insert(k bitkey.Vector, v uint64) error
	Search(k bitkey.Vector) (uint64, bool, error)
	Delete(k bitkey.Vector) (bool, error)
	Range(lo, hi bitkey.Vector, fn func(bitkey.Vector, uint64) bool) error
	Len() int
	Levels() int
	DirectoryElements() int
	DirectoryPages() int
	Validate() error
}

// Index is a multidimensional extendible-hashing index. All methods are
// safe for concurrent use. Under the default BMEH scheme the core tree
// synchronizes itself — searches run latch-free with optimistic
// validation, and writers crab per-node latches so inserts into different
// subtrees proceed in parallel; ix.mu then only fences lifecycle state
// (Options, sync policy, Close) and is held shared by data operations.
// The comparison schemes (MDEH, MEH) are single-writer: their mutations
// serialize on ix.mu's write side, with lookups sharing the read side.
type Index struct {
	mu     sync.RWMutex
	opts   Options
	prm    params.Params
	scheme Scheme
	idx    impl
	store  pagestore.Store
	cached *pagestore.CachedStore
	file   *pagestore.FileDisk
	// mdisk is set when the index runs on BackendMmap; file then aliases
	// mdisk's embedded FileDisk, so the commit/replication/fsck paths are
	// shared between backends.
	mdisk *pagestore.MmapDisk
	// recovered is the number of committed WAL batches replayed when the
	// index was opened (0 for New/Create and after a clean shutdown).
	recovered int
	closed    bool
	// gc, when non-nil, coalesces Sync calls (group commit). Read without
	// ix.mu — the leader's commit acquires ix.mu itself.
	gc atomic.Pointer[pagestore.GroupCommitter]
	// keyPool recycles converted key vectors for Get/Insert/Delete; the
	// scheme implementations never retain the vector (stored records clone
	// it), so the buffer can be reused as soon as the call returns.
	keyPool sync.Pool
}

// requiredPageBytes returns the page size for the scheme and parameters.
func requiredPageBytes(s Scheme, prm params.Params) int {
	switch s {
	case SchemeMDEH:
		return mdeh.PageBytes(prm)
	case SchemeMEH:
		return mehtree.PageBytes(prm)
	default:
		return core.PageBytes(prm)
	}
}

// loadImpl reconstructs the scheme implementation recorded in an index
// header (the store's meta record). Open and the replication apply path
// (which rebuilds the in-memory view after each replicated commit) share
// it.
func loadImpl(st pagestore.Store, meta []byte) (impl, Scheme, params.Params, error) {
	if len(meta) == 0 {
		return nil, 0, params.Params{}, errors.New("store holds no index header")
	}
	switch meta[0] {
	case 'B':
		tree, err := core.Load(st, meta)
		if err != nil {
			return nil, 0, params.Params{}, err
		}
		return tree, SchemeBMEH, tree.Params(), nil
	case 'M':
		tree, err := mehtree.Load(st, meta)
		if err != nil {
			return nil, 0, params.Params{}, err
		}
		return tree, SchemeMEH, tree.Params(), nil
	case 'D':
		tab, err := mdeh.Load(st, meta)
		if err != nil {
			return nil, 0, params.Params{}, err
		}
		return tab, SchemeMDEH, tab.Params(), nil
	default:
		return nil, 0, params.Params{}, fmt.Errorf("unknown index kind %q in header", meta[0])
	}
}

func buildImpl(s Scheme, st pagestore.Store, prm params.Params) (impl, error) {
	switch s {
	case SchemeMDEH:
		return mdeh.New(st, prm)
	case SchemeMEH:
		return mehtree.New(st, prm)
	case SchemeBMEH:
		return core.New(st, prm)
	default:
		return nil, fmt.Errorf("bmeh: unknown scheme %d", int(s))
	}
}

// New creates an in-memory Index.
func New(opts Options) (*Index, error) {
	prm, err := opts.params()
	if err != nil {
		return nil, err
	}
	var st pagestore.Store = pagestore.NewMemDisk(requiredPageBytes(opts.Scheme, prm))
	ix := &Index{opts: opts, prm: prm, scheme: opts.Scheme}
	if opts.CacheFrames > 0 {
		ix.cached = pagestore.NewCachedStore(st, opts.CacheFrames)
		st = ix.cached
	}
	ix.store = st
	ix.idx, err = buildImpl(opts.Scheme, st, prm)
	if err != nil {
		return nil, err
	}
	if err := ix.applyWriteMode(opts.WriteMode); err != nil {
		return nil, err
	}
	ix.SetSyncPolicy(opts.SyncPolicy)
	return ix, nil
}

// applyWriteMode switches a freshly built or loaded index into the
// requested write mode. Setup-time only: it runs before the index is
// shared.
func (ix *Index) applyWriteMode(mode WriteMode) error {
	switch mode {
	case WriteModeLatched:
		return nil
	case WriteModeCOW:
		tr, ok := ix.idx.(*core.Tree)
		if !ok {
			return fmt.Errorf("bmeh: WriteModeCOW requires SchemeBMEH (index is %v)", ix.scheme)
		}
		if err := tr.EnableCOW(); err != nil {
			return err
		}
		tr.SetSnapshotMaxPinAge(ix.opts.SnapshotMaxPinAge)
		return nil
	default:
		return fmt.Errorf("bmeh: unknown write mode %d", int(mode))
	}
}

// Create creates a file-backed Index at path (truncating any existing
// file). All schemes persist; the scheme is recorded in the file and
// recovered by Open.
func Create(path string, opts Options) (*Index, error) {
	prm, err := opts.params()
	if err != nil {
		return nil, err
	}
	ix := &Index{opts: opts, prm: prm, scheme: opts.Scheme}
	var st pagestore.Store
	if opts.Backend == BackendMmap {
		md, err := pagestore.CreateMmapDisk(path, requiredPageBytes(opts.Scheme, prm))
		if err != nil {
			return nil, err
		}
		ix.mdisk, ix.file = md, md.FileDisk
		// No byte pool over mmap: the decoded-node cache sits directly on
		// the zero-copy slice path.
		ix.opts.CacheFrames = 0
		st = md
	} else {
		file, err := pagestore.CreateFileDisk(path, requiredPageBytes(opts.Scheme, prm))
		if err != nil {
			return nil, err
		}
		ix.file = file
		st = file
		if opts.CacheFrames > 0 {
			ix.cached = pagestore.NewCachedStore(st, opts.CacheFrames)
			st = ix.cached
		}
	}
	file := ix.file
	ix.store = st
	ix.idx, err = buildImpl(opts.Scheme, st, prm)
	if err != nil {
		file.Close()
		return nil, err
	}
	if err := ix.applyWriteMode(opts.WriteMode); err != nil {
		file.Close()
		return nil, err
	}
	if err := ix.syncLocked(); err != nil {
		file.Close()
		return nil, err
	}
	ix.SetSyncPolicy(opts.SyncPolicy)
	return ix, nil
}

// Open opens a file-backed Index previously written by Create.
// cacheFrames > 0 enables a page cache as in Options.CacheFrames.
func Open(path string, cacheFrames int) (*Index, error) {
	return OpenBackend(path, cacheFrames, BackendFile)
}

// OpenBackend is Open with an explicit storage engine. The backend is a
// property of the process, not the file: either backend opens any index
// file (the on-disk format is shared), so a store written under
// BackendFile can be served mmap'd and vice versa.
func OpenBackend(path string, cacheFrames int, backend Backend) (*Index, error) {
	return OpenWithOptions(path, Options{CacheFrames: cacheFrames, Backend: backend})
}

// OpenWithOptions is Open with the full set of runtime options: Backend,
// CacheFrames, WriteMode and SyncPolicy are honored; geometry fields
// (Scheme, Dims, PageCapacity, NodeBits, Width) are recovered from the
// file and ignored in opts.
func OpenWithOptions(path string, opts Options) (*Index, error) {
	cacheFrames, backend := opts.CacheFrames, opts.Backend
	ix := &Index{}
	var st pagestore.Store
	if backend == BackendMmap {
		md, err := pagestore.OpenMmapDisk(path)
		if err != nil {
			return nil, err
		}
		ix.mdisk, ix.file = md, md.FileDisk
		st = md
	} else {
		fd, err := pagestore.OpenFileDisk(path)
		if err != nil {
			return nil, err
		}
		ix.file = fd
		st = fd
		if cacheFrames > 0 {
			ix.cached = pagestore.NewCachedStore(st, cacheFrames)
			st = ix.cached
		}
	}
	file := ix.file
	// The meta area can hold up to a page: a v3 record carries the COW
	// deferred free list, which is far larger than the fixed header.
	meta := make([]byte, file.PageSize())
	n, err := file.ReadMeta(meta)
	if err != nil {
		file.Close()
		return nil, err
	}
	ix.store = st
	if n == 0 {
		file.Close()
		return nil, fmt.Errorf("bmeh: %s has no index header", path)
	}
	ix.idx, ix.scheme, ix.prm, err = loadImpl(st, meta[:n])
	if err != nil {
		file.Close()
		return nil, fmt.Errorf("bmeh: %s: %w", path, err)
	}
	// Pages the previous process had retired but not yet reclaimed (they
	// were pinned by open snapshots when the meta committed) are free to
	// recycle now: snapshot pins do not survive the process. A replica's
	// reload path deliberately skips this — it must stay byte-identical to
	// the primary's commit stream.
	if tr, ok := ix.idx.(*core.Tree); ok {
		if err := tr.ReclaimPending(); err != nil {
			file.Close()
			return nil, fmt.Errorf("bmeh: %s: reclaiming retired pages: %w", path, err)
		}
	}
	if err := ix.applyWriteMode(opts.WriteMode); err != nil {
		file.Close()
		return nil, err
	}
	if backend == BackendMmap {
		cacheFrames = 0 // no byte pool over mmap
	}
	ix.opts = Options{
		Scheme:       ix.scheme,
		Dims:         ix.prm.Dims,
		PageCapacity: ix.prm.Capacity,
		NodeBits:     ix.prm.Xi,
		Width:        ix.prm.Width,
		CacheFrames:  cacheFrames,
		Backend:      backend,
		WriteMode:    opts.WriteMode,
		SyncPolicy:   opts.SyncPolicy,
	}
	ix.recovered = file.RecoveredCommits()
	ix.SetSyncPolicy(opts.SyncPolicy)
	return ix, nil
}

// Options returns the index's effective configuration: the scheme,
// geometry and cache settings in force, whether they were given to
// New/Create or recovered from a file by Open. The returned value is a
// copy; mutating it does not affect the index.
func (ix *Index) Options() Options {
	o := ix.opts
	o.Scheme = ix.scheme
	o.Dims = ix.prm.Dims
	o.PageCapacity = ix.prm.Capacity
	o.Width = ix.prm.Width
	o.NodeBits = append([]int(nil), ix.prm.Xi...)
	return o
}

// RecoveryInfo describes what crash recovery had to do when a
// file-backed index was opened.
type RecoveryInfo struct {
	// ReplayedCommits is the number of committed write-ahead-log batches
	// recovery replayed into the file on Open. It is always 0 for an
	// index built by New or Create.
	ReplayedCommits int
}

// CleanShutdown reports whether opening needed no log replay: the
// previous process committed its final Sync and reset the log before
// exiting, which is what Close (and bmehserve's graceful drain) leave
// behind. A positive ReplayedCommits means the store came back from a
// crash that left a durable-but-unapplied commit in the log — the data
// is intact either way; this only distinguishes how the process ended.
func (r RecoveryInfo) CleanShutdown() bool { return r.ReplayedCommits == 0 }

// Recovery reports what opening this index's file required of crash
// recovery. Meaningful after Open; an index created in-process reports
// a clean state trivially.
func (ix *Index) Recovery() RecoveryInfo {
	return RecoveryInfo{ReplayedCommits: ix.recovered}
}

// key converts and validates a public key into a fresh vector (callers
// that may retain the vector use this; the per-operation paths use
// keyPooled).
func (ix *Index) key(k Key) (bitkey.Vector, error) {
	if len(k) != ix.prm.Dims {
		return nil, fmt.Errorf("bmeh: key has %d components, index expects %d", len(k), ix.prm.Dims)
	}
	v := make(bitkey.Vector, len(k))
	if err := ix.fillKey(v, k); err != nil {
		return nil, err
	}
	return v, nil
}

func (ix *Index) fillKey(v bitkey.Vector, k Key) error {
	for j, c := range k {
		if ix.prm.Width < 64 && c >= 1<<uint(ix.prm.Width) {
			return fmt.Errorf("bmeh: component %d (%d) exceeds the index's %d-bit width", j+1, c, ix.prm.Width)
		}
		v[j] = bitkey.Component(c)
	}
	return nil
}

// keyPooled is key backed by the index's buffer pool; return the buffer
// with putKey once the operation no longer reads it.
func (ix *Index) keyPooled(k Key) (*bitkey.Vector, error) {
	if len(k) != ix.prm.Dims {
		return nil, fmt.Errorf("bmeh: key has %d components, index expects %d", len(k), ix.prm.Dims)
	}
	vp, _ := ix.keyPool.Get().(*bitkey.Vector)
	if vp == nil {
		v := make(bitkey.Vector, ix.prm.Dims)
		vp = &v
	}
	if err := ix.fillKey(*vp, k); err != nil {
		ix.keyPool.Put(vp)
		return nil, err
	}
	return vp, nil
}

func (ix *Index) putKey(vp *bitkey.Vector) { ix.keyPool.Put(vp) }

func translateErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, core.ErrDuplicate),
		errors.Is(err, mdeh.ErrDuplicate),
		errors.Is(err, mehtree.ErrDuplicate):
		return ErrDuplicate
	default:
		return err
	}
}

// Insert stores value under key. It returns ErrDuplicate if the key is
// already present.
func (ix *Index) Insert(k Key, value uint64) error {
	vp, err := ix.keyPooled(k)
	if err != nil {
		return err
	}
	// The BMEH core synchronizes its own write path (latch crabbing), so
	// concurrent Inserts only share ix.mu; the flat comparison schemes are
	// single-writer and need the exclusive side.
	lock, unlock := ix.mu.Lock, ix.mu.Unlock
	if ix.scheme == SchemeBMEH {
		lock, unlock = ix.mu.RLock, ix.mu.RUnlock
	}
	lock()
	if ix.closed {
		unlock()
		ix.putKey(vp)
		return pagestore.ErrClosed
	}
	err = translateErr(ix.idx.Insert(*vp, value))
	unlock()
	ix.putKey(vp)
	return err
}

// InsertBatch stores the given pairs, then issues a single Sync,
// amortizing lock traffic and (with a SyncPolicy set) the WAL commit and
// fsync across the whole batch. Under the BMEH scheme the batch is
// partitioned across worker goroutines that insert concurrently through
// the core's latch-crabbing write path; the comparison schemes apply the
// batch sequentially under one write lock. Pairs whose key is already
// present are skipped — the returned count is the number actually
// inserted, so duplicates are len(kvs) minus that count. Any other error
// stops the batch (concurrent workers finish their in-flight pair): pairs
// applied before it remain applied and are made durable by the next Sync.
func (ix *Index) InsertBatch(kvs []KV) (int, error) {
	return ix.insertBatch(kvs, nil)
}

// InsertBatchStatus is InsertBatch with per-entry outcomes: dup[i] is
// true when entry i was skipped because its key was already present.
// Callers that answer for each pair individually — the network server's
// write coalescer funnels many clients' PUTs through here — need to know
// which entries the count excludes, not just how many. On a non-nil
// error the dup slice only covers entries processed before the failure.
func (ix *Index) InsertBatchStatus(kvs []KV) (inserted int, dup []bool, err error) {
	dup = make([]bool, len(kvs))
	inserted, err = ix.insertBatch(kvs, dup)
	return inserted, dup, err
}

// insertBatch is the shared batch path; dup, when non-nil, receives
// per-entry duplicate flags (its length must be len(kvs)).
func (ix *Index) insertBatch(kvs []KV, dup []bool) (int, error) {
	vecs := make([]bitkey.Vector, len(kvs))
	for i := range kvs {
		v, err := ix.key(kvs[i].Key)
		if err != nil {
			return 0, fmt.Errorf("bmeh: batch entry %d: %w", i, err)
		}
		vecs[i] = v
	}
	if ix.scheme == SchemeBMEH {
		return ix.insertBatchParallel(kvs, vecs, dup)
	}
	inserted := 0
	ix.mu.Lock()
	if ix.closed {
		ix.mu.Unlock()
		return 0, pagestore.ErrClosed
	}
	for i, v := range vecs {
		switch err := translateErr(ix.idx.Insert(v, kvs[i].Value)); {
		case err == nil:
			inserted++
		case errors.Is(err, ErrDuplicate):
			// Skipped; reflected in the count (and dup flags).
			if dup != nil {
				dup[i] = true
			}
		default:
			ix.mu.Unlock()
			return inserted, fmt.Errorf("bmeh: batch entry %d: %w", i, err)
		}
	}
	ix.mu.Unlock()
	// Sync outside the lock: with group commit enabled, the commit leader
	// acquires the write lock itself.
	return inserted, ix.Sync()
}

// insertBatchParallel fans a batch out over worker goroutines; the core
// tree's own synchronization keeps concurrent inserts correct, so the
// whole batch runs under one shared hold of ix.mu.
func (ix *Index) insertBatchParallel(kvs []KV, vecs []bitkey.Vector, dup []bool) (int, error) {
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	if workers > len(kvs) {
		workers = len(kvs)
	}
	ix.mu.RLock()
	if ix.closed {
		ix.mu.RUnlock()
		return 0, pagestore.ErrClosed
	}
	var (
		inserted atomic.Int64
		stop     atomic.Bool
		errMu    sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(kvs); i += workers {
				if stop.Load() {
					return
				}
				switch err := translateErr(ix.idx.Insert(vecs[i], kvs[i].Value)); {
				case err == nil:
					inserted.Add(1)
				case errors.Is(err, ErrDuplicate):
					// Skipped; reflected in the count (and dup flags —
					// workers touch disjoint indices, so no races).
					if dup != nil {
						dup[i] = true
					}
				default:
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("bmeh: batch entry %d: %w", i, err)
					}
					errMu.Unlock()
					stop.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	ix.mu.RUnlock()
	if firstErr != nil {
		return int(inserted.Load()), firstErr
	}
	return int(inserted.Load()), ix.Sync()
}

// Get returns the value stored under key.
func (ix *Index) Get(k Key) (uint64, bool, error) {
	vp, err := ix.keyPooled(k)
	if err != nil {
		return 0, false, err
	}
	ix.mu.RLock()
	if ix.closed {
		ix.mu.RUnlock()
		ix.putKey(vp)
		return 0, false, pagestore.ErrClosed
	}
	val, ok, err := ix.idx.Search(*vp)
	ix.mu.RUnlock()
	ix.putKey(vp)
	return val, ok, err
}

// Delete removes key, reporting whether it was present.
func (ix *Index) Delete(k Key) (bool, error) {
	vp, err := ix.keyPooled(k)
	if err != nil {
		return false, err
	}
	// Like Insert: the BMEH core's delete path synchronizes itself (fast
	// crabbing path, escalating internally for restructurings).
	lock, unlock := ix.mu.Lock, ix.mu.Unlock
	if ix.scheme == SchemeBMEH {
		lock, unlock = ix.mu.RLock, ix.mu.RUnlock
	}
	lock()
	if ix.closed {
		unlock()
		ix.putKey(vp)
		return false, pagestore.ErrClosed
	}
	ok, err := ix.idx.Delete(*vp)
	unlock()
	ix.putKey(vp)
	return ok, err
}

// Range calls fn for every record whose key lies in the axis-aligned box
// [lo_j, hi_j] for every dimension j, stopping early if fn returns false.
// For a partial-range or partial-match query, open the unconstrained
// dimensions with 0 and MaxComponent(width) — see Unbounded.
func (ix *Index) Range(lo, hi Key, fn func(k Key, value uint64) bool) error {
	vlo, err := ix.key(lo)
	if err != nil {
		return err
	}
	vhi, err := ix.key(hi)
	if err != nil {
		return err
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.closed {
		return pagestore.ErrClosed
	}
	return ix.idx.Range(vlo, vhi, func(k bitkey.Vector, v uint64) bool {
		pk := make(Key, len(k))
		for j, c := range k {
			pk[j] = uint64(c)
		}
		return fn(pk, v)
	})
}

// Scan calls fn for every record in the index (key order along the
// odometer of the covering cells, not globally sorted).
func (ix *Index) Scan(fn func(k Key, value uint64) bool) error {
	lo := make(Key, ix.prm.Dims)
	hi := make(Key, ix.prm.Dims)
	max := ix.MaxComponent()
	for j := range hi {
		hi[j] = max
	}
	return ix.Range(lo, hi, fn)
}

// MaxComponent returns the largest key component the index accepts
// (2^Width − 1).
func (ix *Index) MaxComponent() uint64 {
	if ix.prm.Width >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(ix.prm.Width) - 1
}

// Len returns the number of stored records.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.idx.Len()
}

// Stats reports storage statistics. With a cache enabled, Reads and Writes
// count physical I/O below the cache.
type Stats struct {
	// Reads and Writes are page-level I/O counts since creation (or the
	// last ResetStats call on the underlying store).
	Reads, Writes uint64
	// Records is the number of stored records.
	Records int
	// DirectoryElements is σ: allocated directory elements.
	DirectoryElements int
	// DirectoryLevels is the directory height (1 for MDEH).
	DirectoryLevels int
	// DataPages is the number of allocated data pages.
	DataPages int
	// DirectoryPages is the number of allocated directory pages/nodes.
	DirectoryPages int
	// LoadFactor is records / (DataPages × PageCapacity).
	LoadFactor float64
}

// Stats returns current statistics.
func (ix *Index) Stats() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	s := ix.store.Stats()
	alloc := ix.store.Allocated()
	total := 0
	for _, n := range alloc {
		total += n
	}
	// Page-role counts come from the index, not the store: a reopened file
	// store does not persist per-page kinds.
	dirPages := ix.idx.DirectoryPages()
	st := Stats{
		Reads:             s.Reads,
		Writes:            s.Writes,
		Records:           ix.idx.Len(),
		DirectoryElements: ix.idx.DirectoryElements(),
		DirectoryLevels:   ix.idx.Levels(),
		DataPages:         total - dirPages,
		DirectoryPages:    dirPages,
	}
	if st.DataPages > 0 {
		st.LoadFactor = float64(st.Records) / float64(st.DataPages*ix.prm.Capacity)
	}
	return st
}

// Validate checks the index's structural invariants (integrity tooling).
func (ix *Index) Validate() error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.idx.Validate()
}

// Dump writes a human-readable rendering of the directory structure to w
// (inspection tooling; traversing the structure costs page I/O).
func (ix *Index) Dump(w io.Writer) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if d, ok := ix.idx.(interface{ Dump(io.Writer) error }); ok {
		return d.Dump(w)
	}
	return fmt.Errorf("bmeh: scheme %v does not support Dump", ix.scheme)
}

// SetSyncPolicy enables (non-zero policy) or disables (zero policy) group
// commit for this index's Sync. It may be called at any time, including on
// an index opened with Open.
func (ix *Index) SetSyncPolicy(p SyncPolicy) {
	if !p.Enabled() {
		ix.gc.Store(nil)
		return
	}
	pol := pagestore.SyncPolicy{Interval: p.Interval, MaxBatch: p.MaxBatch}
	ix.gc.Store(pagestore.NewGroupCommitter(pol, func() error {
		ix.mu.Lock()
		defer ix.mu.Unlock()
		if ix.closed {
			return pagestore.ErrClosed
		}
		return ix.syncLocked()
	}))
}

// AccessPattern is a storage access-pattern hint for Advise.
type AccessPattern int

const (
	// AdviseNormal restores the backend's default readahead.
	AdviseNormal AccessPattern = iota
	// AdviseRandom disables readahead — right for point-read (Get)
	// workloads, where readahead only pollutes the page cache.
	AdviseRandom
	// AdviseSequential enables aggressive readahead — right for Range,
	// Scan and BulkLoad sweeps.
	AdviseSequential
	// AdviseHugePage asks the kernel to back the mapping with transparent
	// huge pages (MADV_HUGEPAGE on BackendMmap). One 2 MiB TLB entry then
	// covers ~500 index pages, which helps directory-walk-heavy working
	// sets; it composes with the readahead hints above instead of
	// replacing them. Whether the kernel honors it depends on the
	// system's THP configuration.
	AdviseHugePage
)

// Advise hints the expected access pattern to the storage backend
// (madvise on BackendMmap; a no-op on every other backend). Purely
// advisory: correctness never depends on it.
func (ix *Index) Advise(p AccessPattern) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.closed {
		return pagestore.ErrClosed
	}
	if ix.mdisk == nil {
		return nil
	}
	var pp pagestore.AccessPattern
	switch p {
	case AdviseNormal:
		pp = pagestore.AdviseNormal
	case AdviseRandom:
		pp = pagestore.AdviseRandom
	case AdviseSequential:
		pp = pagestore.AdviseSequential
	case AdviseHugePage:
		pp = pagestore.AdviseHugePage
	default:
		return fmt.Errorf("bmeh: unknown access pattern %d", int(p))
	}
	return ix.mdisk.Advise(pp)
}

// Mlock pins the mmap backend's mapping in physical memory (on=true) or
// releases the pin. Point reads then never take a major fault — the
// complement of AdviseHugePage's TLB relief. A no-op on every other
// backend. The syscall's refusal (RLIMIT_MEMLOCK is tens of KiB in many
// containers) is returned as an error; the index stays fully usable,
// just unpinned.
func (ix *Index) Mlock(on bool) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.closed {
		return pagestore.ErrClosed
	}
	if ix.mdisk == nil {
		return nil
	}
	return ix.mdisk.Mlock(on)
}

// MmapStats is a snapshot of the mmap backend's read-path counters.
type MmapStats struct {
	// ZeroCopyReads were served as slices straight out of the mapping.
	ZeroCopyReads uint64
	// CopiedReads fell back to an allocated copy (platforms or files
	// where the mapping could not be established).
	CopiedReads uint64
	// StagedReads were served from staged-but-uncommitted page images.
	StagedReads uint64
	// ZeroCopy reports whether the store is actually mapped.
	ZeroCopy bool
}

// MmapStats reports the mmap backend's read-path counters; ok is false
// when the index does not run on BackendMmap.
func (ix *Index) MmapStats() (stats MmapStats, ok bool) {
	if ix.mdisk == nil {
		return MmapStats{}, false
	}
	s := ix.mdisk.MmapStats()
	return MmapStats{
		ZeroCopyReads: s.ZeroCopyReads,
		CopiedReads:   s.CopiedReads,
		StagedReads:   s.StagedReads,
		ZeroCopy:      ix.mdisk.ZeroCopy(),
	}, true
}

// SetDecodedCacheCapacity resizes the BMEH core's decoded-object caches
// (directory nodes and data pages), rebuilding them empty; zero disables
// the respective cache. Benchmarks use it to isolate the store-level read
// path; production callers can use it to bound decoded-cache memory. A
// no-op for the comparison schemes, which have no decoded caches.
func (ix *Index) SetDecodedCacheCapacity(nodes, pages int) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed {
		return pagestore.ErrClosed
	}
	if tr, ok := ix.idx.(*core.Tree); ok {
		return tr.SetDecodedCacheCapacity(nodes, pages)
	}
	return nil
}

// PoolStats reports the page cache's counters; ok is false when the index
// was built without a cache (CacheFrames 0).
func (ix *Index) PoolStats() (stats PoolStats, ok bool) {
	if ix.cached == nil {
		return PoolStats{}, false
	}
	s := ix.cached.PoolStats()
	return PoolStats{
		Hits:       s.Hits,
		Misses:     s.Misses,
		Evictions:  s.Evictions,
		Writebacks: s.Writebacks,
		Shards:     s.Shards,
		Capacity:   s.Capacity,
	}, true
}

// Sync flushes cached pages and persists the index header (file-backed
// indexes). In-memory indexes treat Sync as a cache flush. With a
// SyncPolicy set, concurrent and back-to-back Sync calls coalesce into one
// commit; each caller still returns only once everything it staged is
// durable.
func (ix *Index) Sync() error {
	if gc := ix.gc.Load(); gc != nil {
		return gc.Sync()
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.syncLocked()
}

func (ix *Index) syncLocked() error {
	// Deferred in-place page writes flush first: the pool flush below can
	// only persist bytes that have left the decoded cache.
	if tr, ok := ix.idx.(*core.Tree); ok {
		if err := tr.FlushDirtyPages(); err != nil {
			return err
		}
	}
	var meta []byte
	if ix.file != nil {
		// Marshal first: the MDEH snapshot writes its page-table chain
		// through the (possibly cached) store, which the flush below must
		// still see.
		var err error
		switch v := ix.idx.(type) {
		case *core.Tree:
			meta = v.MarshalMeta()
		case *mehtree.Tree:
			meta = v.MarshalMeta()
		case *mdeh.Table:
			meta, err = v.SaveMeta()
		default:
			err = fmt.Errorf("bmeh: scheme %v does not support persistence", ix.scheme)
		}
		if err != nil {
			return err
		}
	}
	if ix.cached != nil {
		if err := ix.cached.Flush(); err != nil {
			return err
		}
	}
	if ix.file != nil {
		if err := ix.file.WriteMeta(meta); err != nil {
			return err
		}
		return ix.file.Sync()
	}
	return nil
}

// Close syncs (file-backed) and releases the index. The Index must not be
// used afterwards.
func (ix *Index) Close() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed {
		return nil
	}
	ix.closed = true
	if err := ix.syncLocked(); err != nil {
		return err
	}
	if ix.file != nil {
		return ix.file.Close()
	}
	return nil
}
