package bmeh

// Concurrent benchmarks for the scalable read path: BenchmarkParallelGet /
// Insert / Mixed run the public Index under b.RunParallel at 1, 4 and 16
// goroutines (GOMAXPROCS is pinned to the goroutine count for the duration
// of each sub-benchmark, so the counts are exact). Get runs on a warm
// sharded page cache, where the only shared state a probe touches is the
// index's RLock and a pool shard's RLock — the configuration the paper's
// ≤3-accesses-per-probe claim cares about under load. The cache hit ratio
// observed during the measurement window is reported as the hit% metric.
//
// cmd/bmehbench -concurrent runs the same workloads standalone and can
// record them to BENCH_concurrent.json.

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

// benchGoroutineCounts are the parallelism levels the suite sweeps.
var benchGoroutineCounts = []int{1, 4, 16}

// mix64 is splitmix64's finalizer: a cheap bijection spreading sequential
// indices over the key space.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// benchKey derives a 2-d key (32-bit components) from an index.
func benchKey(i uint64) Key {
	h := mix64(i)
	return Key{h & 0xffffffff, h >> 32}
}

// newWarmBenchIndex builds an in-memory index with a cache large enough to
// hold the whole working set, loads n keys, and touches every key once so
// the measurement window runs at a ~100% hit rate.
func newWarmBenchIndex(b *testing.B, n int) *Index {
	b.Helper()
	ix, err := New(Options{Dims: 2, PageCapacity: 32, CacheFrames: 8192})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := ix.Insert(benchKey(uint64(i)), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if _, ok, err := ix.Get(benchKey(uint64(i))); err != nil || !ok {
			b.Fatalf("warmup key %d: ok=%v err=%v", i, ok, err)
		}
	}
	return ix
}

// runAtGoroutines runs body under b.RunParallel with g client goroutines.
// GOMAXPROCS is pinned to min(g, NumCPU): a deployment never runs more OS
// threads than cores, so forcing GOMAXPROCS above NumCPU would only add
// preemption overhead the benchmark is not trying to measure. RunParallel
// spawns parallelism×GOMAXPROCS goroutines, so the parallelism multiplier
// supplies the rest of g (exact whenever GOMAXPROCS divides g).
func runAtGoroutines(b *testing.B, g int, body func(pb *testing.PB, worker uint64)) {
	procs := g
	if n := runtime.NumCPU(); procs > n {
		procs = n
	}
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	b.SetParallelism((g + procs - 1) / procs)
	var workers atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		body(pb, workers.Add(1)-1)
	})
}

// reportPoolMetrics attaches the pool hit ratio observed during the
// measurement window.
func reportPoolMetrics(b *testing.B, ix *Index, before PoolStats) {
	after, ok := ix.PoolStats()
	if !ok {
		return
	}
	d := PoolStats{Hits: after.Hits - before.Hits, Misses: after.Misses - before.Misses}
	b.ReportMetric(d.HitRatio()*100, "hit%")
}

// BenchmarkParallelGet measures exact-match lookups on a warm cache.
func BenchmarkParallelGet(b *testing.B) {
	const n = 20000
	ix := newWarmBenchIndex(b, n)
	defer ix.Close()
	for _, g := range benchGoroutineCounts {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			before, _ := ix.PoolStats()
			runAtGoroutines(b, g, func(pb *testing.PB, worker uint64) {
				i := mix64(worker) // de-correlate workers' probe sequences
				for pb.Next() {
					i++
					k := benchKey(mix64(i) % n)
					if _, ok, err := ix.Get(k); err != nil || !ok {
						b.Errorf("get: ok=%v err=%v", ok, err)
						return
					}
				}
			})
			reportPoolMetrics(b, ix, before)
		})
	}
}

// benchParallelInsertAt loads a fresh in-memory index from g goroutines
// inserting distinct keys as fast as they can.
func benchParallelInsertAt(b *testing.B, g int) {
	ix, err := New(Options{Dims: 2, PageCapacity: 32, CacheFrames: 8192})
	if err != nil {
		b.Fatal(err)
	}
	defer ix.Close()
	var seq atomic.Uint64
	runAtGoroutines(b, g, func(pb *testing.PB, _ uint64) {
		for pb.Next() {
			i := seq.Add(1)
			if err := ix.Insert(benchKey(i), i); err != nil {
				b.Errorf("insert %d: %v", i, err)
				return
			}
		}
	})
}

// BenchmarkParallelInsert measures insertions through the latch-crabbing
// write path: writers descend under per-node latches and only splits
// briefly stop the others, so distinct-subtree inserts proceed in
// parallel.
func BenchmarkParallelInsert(b *testing.B) {
	for _, g := range benchGoroutineCounts {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			benchParallelInsertAt(b, g)
		})
	}
}

// BenchmarkInsertParallel is the write-path acceptance benchmark for the
// decomposed index lock (recorded to BENCH_writepath.json): aggregate
// insert throughput must scale with goroutines where the old global write
// lock held it flat. Same workload as BenchmarkParallelInsert, named
// separately so the record tracks the write path specifically.
func BenchmarkInsertParallel(b *testing.B) {
	for _, g := range benchGoroutineCounts {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			benchParallelInsertAt(b, g)
		})
	}
}

// BenchmarkParallelMixed measures a 90% read / 10% insert mix on a warm
// cache.
func BenchmarkParallelMixed(b *testing.B) {
	const n = 20000
	for _, g := range benchGoroutineCounts {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			ix := newWarmBenchIndex(b, n)
			defer ix.Close()
			var seq atomic.Uint64
			seq.Store(n)
			before, _ := ix.PoolStats()
			runAtGoroutines(b, g, func(pb *testing.PB, worker uint64) {
				i := mix64(worker)
				for pb.Next() {
					i++
					if i%10 == 0 {
						w := seq.Add(1)
						if err := ix.Insert(benchKey(w), w); err != nil {
							b.Errorf("insert: %v", err)
							return
						}
					} else if _, ok, err := ix.Get(benchKey(mix64(i) % n)); err != nil || !ok {
						b.Errorf("get: ok=%v err=%v", ok, err)
						return
					}
				}
			})
			reportPoolMetrics(b, ix, before)
		})
	}
}
