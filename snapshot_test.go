package bmeh

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSnapshotFrozenView: a snapshot keeps serving the exact state it
// pinned while the live index churns past it.
func TestSnapshotFrozenView(t *testing.T) {
	ix, err := New(Options{Dims: 2, PageCapacity: 8, WriteMode: WriteModeCOW})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	keys := randKeys(1500, 2, 41)
	half := len(keys) / 2
	for i, k := range keys[:half] {
		if err := ix.Insert(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := ix.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	epoch := snap.Epoch()

	// Churn the live tree: delete a third of the pinned keys, insert the
	// rest of the keyspace, overwriting nothing the snapshot holds.
	for i := 0; i < half; i += 3 {
		if ok, err := ix.Delete(keys[i]); err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", i, ok, err)
		}
	}
	for i, k := range keys[half:] {
		if err := ix.Insert(k, uint64(half+i)); err != nil {
			t.Fatal(err)
		}
	}

	if snap.Len() != half {
		t.Fatalf("snapshot Len = %d, want %d", snap.Len(), half)
	}
	if snap.Epoch() != epoch {
		t.Fatalf("snapshot epoch moved: %d -> %d", epoch, snap.Epoch())
	}
	for i, k := range keys[:half] {
		v, ok, err := snap.Get(k)
		if err != nil || !ok || v != uint64(i) {
			t.Fatalf("snapshot get %d: v=%d ok=%v err=%v", i, v, ok, err)
		}
	}
	for _, k := range keys[half:] {
		if _, ok, _ := snap.Get(k); ok {
			t.Fatalf("snapshot sees key %v inserted after the pin", k)
		}
	}
	// A full-box Range covers exactly the pinned records.
	n := 0
	err = snap.Range(Key{0, 0}, Key{math.MaxUint32, math.MaxUint32}, func(Key, uint64) bool {
		n++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != half {
		t.Fatalf("snapshot range saw %d records, want %d", n, half)
	}

	st := ix.SnapshotStats()
	if !st.COW || st.PinnedEpochs != 1 {
		t.Fatalf("implausible stats with one open snapshot: %+v", st)
	}
	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}
	st = ix.SnapshotStats()
	if st.PinnedEpochs != 0 || st.ReclaimablePages != 0 {
		t.Fatalf("pages left unreclaimed after last close: %+v", st)
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotConsistencyUnderWriter: snapshots taken while a writer
// saturates the index always see an internally consistent cut — the
// record count of a full scan equals Len at the pin, for every snapshot.
// Run under -race this also exercises the epoch-reclamation fences.
func TestSnapshotConsistencyUnderWriter(t *testing.T) {
	ix, err := New(Options{Dims: 2, PageCapacity: 8, WriteMode: WriteModeCOW})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	keys := randKeys(3000, 2, 43)
	for i, k := range keys[:1000] {
		if err := ix.Insert(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var writer sync.WaitGroup
	writer.Add(1)
	go func() { // saturating writer: rolling insert/delete window
		defer writer.Done()
		for i := 1000; !stop.Load(); i++ {
			k := keys[i%len(keys)]
			if _, ok, _ := ix.Get(k); ok {
				if _, err := ix.Delete(k); err != nil {
					t.Error(err)
					return
				}
			} else if err := ix.Insert(k, uint64(i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	lo, hi := Key{0, 0}, Key{math.MaxUint32, math.MaxUint32}
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for iter := 0; iter < 30; iter++ {
				snap, err := ix.Snapshot()
				if err != nil {
					t.Error(err)
					return
				}
				want := snap.Len()
				got := 0
				if err := snap.Range(lo, hi, func(Key, uint64) bool { got++; return true }); err != nil {
					t.Error(err)
				} else if got != want {
					t.Errorf("iter %d: range saw %d records, snapshot Len = %d", iter, got, want)
				}
				snap.Close()
			}
		}()
	}
	readers.Wait()
	stop.Store(true)
	writer.Wait()
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotWriteToBackup: an online backup taken from a pinned
// snapshot while a writer keeps committing opens as a normal index file
// holding exactly the snapshot's records, and passes Fsck.
func TestSnapshotWriteToBackup(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "live.bmeh")
	ix, err := Create(path, Options{Dims: 2, PageCapacity: 8, CacheFrames: 128, WriteMode: WriteModeCOW})
	if err != nil {
		t.Fatal(err)
	}
	keys := randKeys(2000, 2, 47)
	half := len(keys) / 2
	for i, k := range keys[:half] {
		if err := ix.Insert(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := ix.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Keep a writer committing while the backup streams.
	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := half; !stop.Load() && i < len(keys); i++ {
			if err := ix.Insert(keys[i], uint64(i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	bakPath := filepath.Join(dir, "backup.bmeh")
	f, err := os.Create(bakPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snap.WriteTo(f); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	stop.Store(true)
	<-done
	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := Fsck(bakPath)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("backup fsck: %v", rep.Problems)
	}
	bak, err := Open(bakPath, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer bak.Close()
	if bak.Len() != half {
		t.Fatalf("backup Len = %d, want the snapshot's %d", bak.Len(), half)
	}
	for i, k := range keys[:half] {
		v, ok, err := bak.Get(k)
		if err != nil || !ok || v != uint64(i) {
			t.Fatalf("backup get %d: v=%d ok=%v err=%v", i, v, ok, err)
		}
	}
	for _, k := range keys[half : half+100] {
		if _, ok, _ := bak.Get(k); ok {
			t.Fatalf("backup contains key %v committed after the pin", k)
		}
	}
	if err := bak.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotCOWPersistence: a COW index survives close/reopen — the
// deferred free list persisted in the header is reclaimed on open, and
// the reopened index keeps answering correctly in either write mode.
func TestSnapshotCOWPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.bmeh")
	keys := randKeys(1200, 2, 53)
	ix, err := Create(path, Options{Dims: 2, PageCapacity: 8, CacheFrames: 128, WriteMode: WriteModeCOW})
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if err := ix.Insert(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Pin a snapshot and churn so retired pages accumulate, then close
	// the index with the pin still held — the process-exit-with-open-
	// reader shape. The retired pages ride the header's pending list and
	// must be recycled by the reopen, not leaked.
	if _, err := ix.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(keys); i += 2 {
		if _, err := ix.Delete(keys[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	for _, mode := range []WriteMode{WriteModeLatched, WriteModeCOW} {
		re, err := OpenWithOptions(path, Options{CacheFrames: 128, WriteMode: mode})
		if err != nil {
			t.Fatalf("%v: reopen: %v", mode, err)
		}
		if re.Len() != len(keys)/2 {
			t.Fatalf("%v: reopened Len = %d, want %d", mode, re.Len(), len(keys)/2)
		}
		for i, k := range keys {
			v, ok, err := re.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			if want := i%2 == 1; ok != want || (ok && v != uint64(i)) {
				t.Fatalf("%v: get %d: v=%d ok=%v", mode, i, v, ok)
			}
		}
		if err := re.Validate(); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := Fsck(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("fsck after COW churn: %v", rep.Problems)
	}
}

// TestSnapshotModeErrors: snapshots are refused outside SchemeBMEH +
// WriteModeCOW, and COW itself is refused for the flat-directory schemes.
func TestSnapshotModeErrors(t *testing.T) {
	ix, err := New(Options{Dims: 2, PageCapacity: 8}) // latched BMEH
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if _, err := ix.Snapshot(); err != ErrSnapshots {
		t.Fatalf("latched Snapshot: err = %v, want ErrSnapshots", err)
	}
	if st := ix.SnapshotStats(); st.COW || st.PinnedEpochs != 0 {
		t.Fatalf("latched stats: %+v", st)
	}
	for _, s := range []Scheme{SchemeMDEH, SchemeMEH} {
		if _, err := New(Options{Scheme: s, Dims: 2, PageCapacity: 8, WriteMode: WriteModeCOW}); err == nil {
			t.Fatalf("%v: WriteModeCOW accepted, want error", s)
		}
	}
	if fmt.Sprint(WriteModeLatched, WriteModeCOW) != "latched cow" {
		t.Fatalf("WriteMode strings: %v %v", WriteModeLatched, WriteModeCOW)
	}
}

// TestSnapshotMaxPinAge: an abandoned pin older than SnapshotMaxPinAge is
// force-released by the next reclamation pass — its pages recycle, its
// reads fail with ErrSnapshotReleased, its Close stays a safe no-op —
// while a younger snapshot keeps working untouched.
func TestSnapshotMaxPinAge(t *testing.T) {
	const maxAge = 30 * time.Millisecond
	ix, err := New(Options{
		Dims: 2, PageCapacity: 8,
		WriteMode:         WriteModeCOW,
		SnapshotMaxPinAge: maxAge,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	keys := randKeys(600, 2, 97)
	for i, k := range keys[:300] {
		if err := ix.Insert(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}

	leaked, err := ix.Snapshot() // never Closed by the "application"
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := leaked.Get(keys[0]); err != nil || !ok {
		t.Fatalf("fresh snapshot get: ok=%v err=%v", ok, err)
	}

	time.Sleep(maxAge + 20*time.Millisecond)
	// Any commit past the age triggers the sweep via tryReclaim.
	for i, k := range keys[300:] {
		if err := ix.Insert(k, uint64(300+i)); err != nil {
			t.Fatal(err)
		}
	}

	st := ix.SnapshotStats()
	if st.ForcedReleases != 1 {
		t.Fatalf("ForcedReleases = %d, want 1 (stats %+v)", st.ForcedReleases, st)
	}
	if st.PinnedEpochs != 0 {
		t.Fatalf("forced release left %d epochs pinned", st.PinnedEpochs)
	}
	if st.ReclaimablePages != 0 {
		t.Fatalf("forced release left %d pages unreclaimed", st.ReclaimablePages)
	}
	if _, _, err := leaked.Get(keys[0]); err != ErrSnapshotReleased {
		t.Fatalf("released Get: err = %v, want ErrSnapshotReleased", err)
	}
	err = leaked.Range(Key{0, 0}, Key{math.MaxUint32, math.MaxUint32}, func(Key, uint64) bool { return true })
	if err != ErrSnapshotReleased {
		t.Fatalf("released Range: err = %v, want ErrSnapshotReleased", err)
	}
	if err := leaked.Close(); err != nil {
		t.Fatalf("Close after forced release: %v", err)
	}
	st = ix.SnapshotStats()
	if st.ForcedReleases != 1 || st.PinnedEpochs != 0 {
		t.Fatalf("stats corrupted by Close after forced release: %+v", st)
	}

	// A fresh snapshot on the same index is unaffected until it ages out.
	snap, err := ix.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	n := 0
	err = snap.Range(Key{0, 0}, Key{math.MaxUint32, math.MaxUint32}, func(Key, uint64) bool {
		n++
		return true
	})
	if err != nil || n != len(keys) {
		t.Fatalf("fresh snapshot after sweep: n=%d err=%v", n, err)
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}
